(* CSR-native dags on off-heap int32 slabs: both adjacency directions live
   in flat offset/data slabs ({!Slab.t}, Bigarray-backed) built once at
   construction. The GC never scans adjacency (a 10^8-node dag adds no
   marking work), every entry costs 4 bytes instead of a boxed word, and a
   built dag can be written to / memory-mapped back from a binary snapshot
   ([save]/[load]) in O(1).

   Invariants (established by [Builder.build], preserved by every
   constructor):
     - [soff] and [poff] have length [n + 1] with [soff.(0) = poff.(0) = 0]
       and [soff.(n) = poff.(n) = m];
     - children of [v] are [sdat.(soff.(v)) .. sdat.(soff.(v+1) - 1)],
       strictly ascending; parents likewise in [pdat]/[poff];
     - the two directions describe the same arc set, which is self-loop
       free, duplicate free, and acyclic;
     - [n_sources] counts the parentless nodes;
     - [n] and [m] fit in an int32 entry ([Slab.max_value]). *)

module A1 = Bigarray.Array1

type t = {
  n : int;
  soff : Slab.t;
  sdat : Slab.t;
  poff : Slab.t;
  pdat : Slab.t;
  labels : string array option;
  n_sources : int;
}

let n_nodes g = g.n
let n_arcs g = Slab.length g.sdat
let n_sources g = g.n_sources

let out_degree g v = Slab.get g.soff (v + 1) - Slab.get g.soff v
let in_degree g v = Slab.get g.poff (v + 1) - Slab.get g.poff v

let succ g v = Slab.to_int_array ~pos:(Slab.get g.soff v) ~len:(out_degree g v) g.sdat
let pred g v = Slab.to_int_array ~pos:(Slab.get g.poff v) ~len:(in_degree g v) g.pdat

let succ_offsets g = g.soff
let succ_targets g = g.sdat
let pred_offsets g = g.poff
let pred_sources g = g.pdat

let iter_succ g v f =
  let dat = g.sdat in
  for i = Slab.get g.soff v to Slab.get g.soff (v + 1) - 1 do
    f (Slab.unsafe_get dat i)
  done

let iter_pred g v f =
  let dat = g.pdat in
  for i = Slab.get g.poff v to Slab.get g.poff (v + 1) - 1 do
    f (Slab.unsafe_get dat i)
  done

let fold_succ g v init f =
  let dat = g.sdat in
  let acc = ref init in
  for i = Slab.get g.soff v to Slab.get g.soff (v + 1) - 1 do
    acc := f !acc (Slab.unsafe_get dat i)
  done;
  !acc

let fold_pred g v init f =
  let dat = g.pdat in
  let acc = ref init in
  for i = Slab.get g.poff v to Slab.get g.poff (v + 1) - 1 do
    acc := f !acc (Slab.unsafe_get dat i)
  done;
  !acc

let in_degrees g =
  let poff = g.poff in
  Array.init g.n (fun v -> Slab.unsafe_get poff (v + 1) - Slab.unsafe_get poff v)

let has_arc g u v =
  (* child rows are sorted, so binary search *)
  let dat = g.sdat in
  let rec go lo hi =
    if lo >= hi then false
    else
      let mid = (lo + hi) / 2 in
      let x = Slab.unsafe_get dat mid in
      if x = v then true else if x < v then go (mid + 1) hi else go lo mid
  in
  go (Slab.get g.soff u) (Slab.get g.soff (u + 1))

let iter_arcs g f =
  let off = g.soff and dat = g.sdat in
  for u = 0 to g.n - 1 do
    for i = Slab.unsafe_get off u to Slab.unsafe_get off (u + 1) - 1 do
      f u (Slab.unsafe_get dat i)
    done
  done

let fold_arcs g init f =
  let acc = ref init in
  iter_arcs g (fun u v -> acc := f !acc u v);
  !acc

(* compatibility wrapper over {!iter_arcs}; prefer the iterators *)
let arcs g =
  let acc = ref [] in
  let off = g.soff and dat = g.sdat in
  for u = g.n - 1 downto 0 do
    for i = Slab.unsafe_get off (u + 1) - 1 downto Slab.unsafe_get off u do
      acc := (u, Slab.unsafe_get dat i) :: !acc
    done
  done;
  !acc

let label g v =
  match g.labels with
  | Some ls -> ls.(v)
  | None -> string_of_int v

let has_labels g = Option.is_some g.labels

let find_label g s =
  match g.labels with
  | None -> (try Some (int_of_string s) with _ -> None)
  | Some ls ->
    let rec go i = if i >= g.n then None else if ls.(i) = s then Some i else go (i + 1) in
    go 0

let is_source g v = in_degree g v = 0
let is_sink g v = out_degree g v = 0

let filter_nodes g p =
  let acc = ref [] in
  for v = g.n - 1 downto 0 do
    if p v then acc := v :: !acc
  done;
  !acc

let sources g = filter_nodes g (is_source g)
let sinks g = filter_nodes g (is_sink g)
let nonsinks g = filter_nodes g (fun v -> not (is_sink g v))
let nonsources g = filter_nodes g (fun v -> not (is_source g v))

let count_nodes g p =
  let c = ref 0 in
  for v = 0 to g.n - 1 do
    if p v then incr c
  done;
  !c

let n_nonsinks g = count_nodes g (fun v -> not (is_sink g v))
let n_nonsources g = count_nodes g (fun v -> not (is_source g v))

(* Kahn's algorithm over the successor CSR with slab scratch only: [indeg]
   (consumed) and [queue] are caller-supplied n-entry slabs, so checking a
   10^8-node dag allocates nothing on the OCaml heap. Returns the number of
   nodes drained — [n] iff acyclic. [emit] sees the nodes in a valid
   topological order. *)
let kahn_drain ~n ~soff ~sdat ~indeg ~queue ~emit =
  let head = ref 0 and tail = ref 0 in
  for v = 0 to n - 1 do
    if Slab.unsafe_get indeg v = 0 then begin
      Slab.unsafe_set queue !tail v;
      incr tail
    end
  done;
  while !head < !tail do
    let v = Slab.unsafe_get queue !head in
    incr head;
    emit v;
    for i = Slab.unsafe_get soff v to Slab.unsafe_get soff (v + 1) - 1 do
      let w = Slab.unsafe_get sdat i in
      let r = Slab.unsafe_get indeg w - 1 in
      Slab.unsafe_set indeg w r;
      if r = 0 then begin
        Slab.unsafe_set queue !tail w;
        incr tail
      end
    done
  done;
  !head

module Builder = struct
  type dag = t

  (* Arcs are buffered as raw little-endian int32 pairs in a [Bytes.t]
     (8 bytes per arc; the GC treats it as opaque, so even the in-memory
     buffer is never scanned). In streaming mode ([spill_arcs]) the buffer
     is a fixed-size chunk flushed to an unlinked temp file whenever full,
     so peak memory during construction is one chunk regardless of the
     final arc count; [build] then streams the file back in two passes. *)
  type nonrec t = {
    n : int;
    labels : string array option;
    spill_arcs : int;  (* flush threshold; [max_int] = never spill *)
    mutable buf : Bytes.t;
    mutable fill : int;  (* arcs currently in [buf] *)
    mutable spilled : int;  (* arcs already flushed to the temp file *)
    mutable file : (out_channel * in_channel) option;
  }

  let default_spill () =
    match Sys.getenv_opt "IC_BUILDER_SPILL" with
    | None -> max_int
    | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some k when k > 0 -> k
      | _ -> max_int)

  let create ?labels ~n ?(hint = 16) ?spill_arcs () =
    let spill_arcs =
      match spill_arcs with
      | Some k when k > 0 -> k
      | Some _ -> invalid_arg "Dag.Builder.create: spill_arcs must be positive"
      | None -> default_spill ()
    in
    let initial = max 1 (min (max 1 hint) spill_arcs) in
    {
      n;
      labels;
      spill_arcs;
      buf = Bytes.create (8 * initial);
      fill = 0;
      spilled = 0;
      file = None;
    }

  let n_pending b = b.spilled + b.fill
  let spilled b = b.spilled > 0

  (* The temp file is unlinked the moment it is created (best-effort):
     both channels keep operating on the anonymous inode, and the kernel
     reclaims it when the process exits — no cleanup obligation even on
     abnormal exit. *)
  let channels b =
    match b.file with
    | Some c -> c
    | None ->
      let path = Filename.temp_file "icdag_arcs" ".bin" in
      let oc = open_out_bin path in
      let ic = open_in_bin path in
      (try Sys.remove path with Sys_error _ -> ());
      let c = (oc, ic) in
      b.file <- Some c;
      c

  (* Out-of-int32-range endpoints saturate on store; [build]'s range check
     rejects them anyway (any id outside [0, n) with n <= Slab.max_value),
     only the value echoed in the error message saturates. *)
  let clamp32 x =
    if x > Slab.max_value then Int32.max_int
    else if x < -Slab.max_value - 1 then Int32.min_int
    else Int32.of_int x

  let add_arc b u v =
    if 8 * b.fill = Bytes.length b.buf then begin
      if b.fill >= b.spill_arcs then begin
        let oc, _ = channels b in
        output oc b.buf 0 (8 * b.fill);
        b.spilled <- b.spilled + b.fill;
        b.fill <- 0
      end
      else begin
        let limit =
          if b.spill_arcs >= max_int / 8 then max_int else 8 * b.spill_arcs
        in
        let cap = max 128 (min (2 * Bytes.length b.buf) limit) in
        let nb = Bytes.create cap in
        Bytes.blit b.buf 0 nb 0 (8 * b.fill);
        b.buf <- nb
      end
    end;
    let off = 8 * b.fill in
    Bytes.set_int32_le b.buf off (clamp32 u);
    Bytes.set_int32_le b.buf (off + 4) (clamp32 v);
    b.fill <- b.fill + 1

  (* One sequential pass over every pending arc: spilled chunks streamed
     back through a bounded scratch buffer, then the in-memory tail. *)
  let iter_pending b f =
    (match b.file with
    | None -> ()
    | Some (oc, ic) ->
      flush oc;
      seek_in ic 0;
      let scratch = Bytes.create 65536 in
      let remaining = ref (8 * b.spilled) in
      while !remaining > 0 do
        let want = min !remaining (Bytes.length scratch) in
        really_input ic scratch 0 want;
        for i = 0 to (want / 8) - 1 do
          f
            (Int32.to_int (Bytes.get_int32_le scratch (8 * i)))
            (Int32.to_int (Bytes.get_int32_le scratch ((8 * i) + 4)))
        done;
        remaining := !remaining - want
      done);
    for i = 0 to b.fill - 1 do
      f
        (Int32.to_int (Bytes.get_int32_le b.buf (8 * i)))
        (Int32.to_int (Bytes.get_int32_le b.buf ((8 * i) + 4)))
    done

  (* Build both CSR directions in O(n + m) slab passes without ever
     materializing the edge list in heap memory:
       1. streaming count pass — validates endpoints/self-loops and fills
          both offset tables;
       2. streaming scatter pass — parents of each node land in [pdat]
          rows (arrival order), then each row is sorted in place (rows are
          short: insertion sort, heapsort fallback);
       3. a scan of [pdat] in (target, source) order scatters targets by
          source, which fills [sdat] rows already sorted.
     Duplicates are adjacent within the finished [sdat] rows; acyclicity
     is Kahn's algorithm over the successor CSR with slab scratch. Unlike
     the previous in-heap three-pass counting sort, no m-sized
     intermediate arc arrays exist: peak transient state is the two
     offset tables plus two n-entry scratch slabs. *)
  let build b =
    Ic_prof.Span.time "dag.build" @@ fun () ->
    let n = b.n and m = n_pending b in
    if n < 0 then Error "negative node count"
    else if n > Slab.max_value - 1 then
      Error (Printf.sprintf "node count %d exceeds the int32 CSR limit" n)
    else if m > Slab.max_value then
      Error (Printf.sprintf "arc count %d exceeds the int32 CSR limit" m)
    else
      match b.labels with
      | Some ls when Array.length ls <> n ->
        Error
          (Printf.sprintf "labels length %d does not match node count %d"
             (Array.length ls) n)
      | _ ->
        let soff = Slab.create (n + 1) in
        let poff = Slab.create (n + 1) in
        let bad_endpoint = ref None and self_loop = ref None in
        Ic_prof.Span.time "dag.build.validate" (fun () ->
            iter_pending b (fun u v ->
                if u < 0 || u >= n || v < 0 || v >= n then begin
                  if !bad_endpoint = None then bad_endpoint := Some (u, v)
                end
                else if u = v then begin
                  if !self_loop = None then self_loop := Some u
                end
                else begin
                  Slab.unsafe_set soff (u + 1) (Slab.unsafe_get soff (u + 1) + 1);
                  Slab.unsafe_set poff (v + 1) (Slab.unsafe_get poff (v + 1) + 1)
                end));
        (match (!bad_endpoint, !self_loop) with
        | Some (u, v), _ ->
          Error (Printf.sprintf "arc (%d -> %d) out of range [0, %d)" u v n)
        | None, Some u -> Error (Printf.sprintf "self-loop on node %d" u)
        | None, None ->
          for v = 0 to n - 1 do
            Slab.unsafe_set soff (v + 1)
              (Slab.unsafe_get soff (v + 1) + Slab.unsafe_get soff v);
            Slab.unsafe_set poff (v + 1)
              (Slab.unsafe_get poff (v + 1) + Slab.unsafe_get poff v)
          done;
          let fill = Slab.create n in
          let pdat = Slab.create m in
          Ic_prof.Span.time "dag.build.sort" (fun () ->
              (* scatter parents by target, then sort each row *)
              for v = 0 to n - 1 do
                Slab.unsafe_set fill v (Slab.unsafe_get poff v)
              done;
              iter_pending b (fun u v ->
                  let p = Slab.unsafe_get fill v in
                  Slab.unsafe_set fill v (p + 1);
                  Slab.unsafe_set pdat p u);
              for v = 0 to n - 1 do
                Slab.sort_range pdat ~lo:(Slab.unsafe_get poff v)
                  ~hi:(Slab.unsafe_get poff (v + 1))
              done);
          let sdat = Slab.create m in
          Ic_prof.Span.time "dag.build.scatter" (fun () ->
              (* pdat in (target, source) order scatters into sorted sdat
                 rows: for a fixed source the targets arrive ascending *)
              for v = 0 to n - 1 do
                Slab.unsafe_set fill v (Slab.unsafe_get soff v)
              done;
              for v = 0 to n - 1 do
                for i = Slab.unsafe_get poff v to Slab.unsafe_get poff (v + 1) - 1 do
                  let u = Slab.unsafe_get pdat i in
                  let p = Slab.unsafe_get fill u in
                  Slab.unsafe_set fill u (p + 1);
                  Slab.unsafe_set sdat p v
                done
              done);
          (* duplicates are adjacent within a row *)
          let dup = ref None in
          for u = 0 to n - 1 do
            for i = Slab.unsafe_get soff u + 1 to Slab.unsafe_get soff (u + 1) - 1 do
              if
                !dup = None
                && Slab.unsafe_get sdat i = Slab.unsafe_get sdat (i - 1)
              then dup := Some (u, Slab.unsafe_get sdat i)
            done
          done;
          (match !dup with
          | Some (u, v) -> Error (Printf.sprintf "duplicate arc (%d -> %d)" u v)
          | None ->
            let n_sources = ref 0 in
            for v = 0 to n - 1 do
              let d = Slab.unsafe_get poff (v + 1) - Slab.unsafe_get poff v in
              Slab.unsafe_set fill v d;
              if d = 0 then incr n_sources
            done;
            let queue = Slab.create n in
            let drained =
              Ic_prof.Span.time "dag.build.acyclic" (fun () ->
                  kahn_drain ~n ~soff ~sdat ~indeg:fill ~queue ~emit:ignore)
            in
            if drained <> n then Error "graph has a cycle"
            else
              Ok
                {
                  n;
                  soff;
                  sdat;
                  poff;
                  pdat;
                  labels = b.labels;
                  n_sources = !n_sources;
                }))

  let build_exn b =
    match build b with
    | Ok g -> g
    | Error msg -> invalid_arg ("Dag.Builder.build_exn: " ^ msg)
end

let make ?labels ~n ~arcs () =
  let b = Builder.create ?labels ~n ~hint:(List.length arcs) () in
  List.iter (fun (u, v) -> Builder.add_arc b u v) arcs;
  Builder.build b

let make_exn ?labels ~n ~arcs () =
  match make ?labels ~n ~arcs () with
  | Ok g -> g
  | Error msg -> invalid_arg ("Dag.make_exn: " ^ msg)

let empty n =
  if n < 0 then invalid_arg "Dag.empty: negative node count";
  {
    n;
    soff = Slab.create (n + 1);
    sdat = Slab.create 0;
    poff = Slab.create (n + 1);
    pdat = Slab.create 0;
    labels = None;
    n_sources = n;
  }

let sum g1 g2 =
  let shift = g1.n and mshift = n_arcs g1 in
  let n = g1.n + g2.n in
  let cat_off o1 o2 =
    let out = Slab.create (n + 1) in
    for v = 0 to g1.n do
      Slab.unsafe_set out v (Slab.unsafe_get o1 v)
    done;
    for v = 1 to g2.n do
      Slab.unsafe_set out (g1.n + v) (Slab.unsafe_get o2 v + mshift)
    done;
    out
  in
  let cat_dat d1 d2 =
    let m1 = Slab.length d1 and m2 = Slab.length d2 in
    let out = Slab.create (m1 + m2) in
    if m1 > 0 then Slab.blit d1 (Slab.sub out 0 m1);
    for i = 0 to m2 - 1 do
      Slab.unsafe_set out (m1 + i) (Slab.unsafe_get d2 i + shift)
    done;
    out
  in
  let labels =
    match (g1.labels, g2.labels) with
    | None, None -> None
    | _ ->
      let l1 = match g1.labels with Some l -> l | None -> Array.init g1.n string_of_int in
      let l2 = match g2.labels with Some l -> l | None -> Array.init g2.n string_of_int in
      Some (Array.append l1 l2)
  in
  {
    n;
    soff = cat_off g1.soff g2.soff;
    sdat = cat_dat g1.sdat g2.sdat;
    poff = cat_off g1.poff g2.poff;
    pdat = cat_dat g1.pdat g2.pdat;
    labels;
    n_sources = g1.n_sources + g2.n_sources;
  }

let dual g =
  let n_sources = count_nodes g (is_sink g) in
  {
    g with
    soff = g.poff;
    sdat = g.pdat;
    poff = g.soff;
    pdat = g.sdat;
    n_sources;
  }

let relabel g labels =
  if Array.length labels <> g.n then invalid_arg "Dag.relabel: length mismatch";
  { g with labels = Some (Array.copy labels) }

let topological_order g =
  let n = g.n in
  let indeg = Slab.create n in
  for v = 0 to n - 1 do
    Slab.unsafe_set indeg v (Slab.unsafe_get g.poff (v + 1) - Slab.unsafe_get g.poff v)
  done;
  let queue = Slab.create n in
  let order = Array.make n (-1) in
  let k = ref 0 in
  let drained =
    kahn_drain ~n ~soff:g.soff ~sdat:g.sdat ~indeg ~queue ~emit:(fun v ->
        Array.unsafe_set order !k v;
        incr k)
  in
  assert (drained = n) (* acyclicity is a construction invariant *);
  order

let is_connected g =
  if g.n = 0 then true
  else begin
    let seen = Bytes.make g.n '\000' in
    let stack = Stack.create () in
    Stack.push 0 stack;
    Bytes.set seen 0 '\001';
    let count = ref 1 in
    while not (Stack.is_empty stack) do
      let v = Stack.pop stack in
      let visit w =
        if Bytes.unsafe_get seen w = '\000' then begin
          Bytes.unsafe_set seen w '\001';
          incr count;
          Stack.push w stack
        end
      in
      iter_succ g v visit;
      iter_pred g v visit
    done;
    !count = g.n
  end

let depth g =
  let order = topological_order g in
  let d = Array.make g.n 0 in
  Array.iter
    (fun v ->
      iter_succ g v (fun w -> if d.(v) + 1 > d.(w) then d.(w) <- d.(v) + 1))
    order;
  d

let height g =
  let order = topological_order g in
  let h = Array.make g.n 0 in
  for i = g.n - 1 downto 0 do
    let v = order.(i) in
    iter_succ g v (fun w -> if h.(w) + 1 > h.(v) then h.(v) <- h.(w) + 1)
  done;
  h

let longest_path g =
  if g.n = 0 then 0 else Array.fold_left max 0 (depth g)

let map_nodes g ~perm =
  if Array.length perm <> g.n then invalid_arg "Dag.map_nodes: length mismatch";
  let seen = Array.make g.n false in
  Array.iter
    (fun p ->
      if p < 0 || p >= g.n || seen.(p) then invalid_arg "Dag.map_nodes: not a permutation";
      seen.(p) <- true)
    perm;
  let labels =
    Option.map
      (fun ls ->
        let out = Array.make g.n "" in
        Array.iteri (fun v l -> out.(perm.(v)) <- l) ls;
        out)
      g.labels
  in
  let b = Builder.create ?labels ~n:g.n ~hint:(n_arcs g) () in
  iter_arcs g (fun u v -> Builder.add_arc b perm.(u) perm.(v));
  Builder.build_exn b

let quotient g ~cluster_of ~n_clusters =
  if Array.length cluster_of <> g.n then Error "cluster_of length mismatch"
  else if Array.exists (fun c -> c < 0 || c >= n_clusters) cluster_of then
    Error "cluster id out of range"
  else begin
    let tbl = Hashtbl.create (n_arcs g) in
    let b = Builder.create ~n:n_clusters ~hint:(n_arcs g) () in
    iter_arcs g (fun u v ->
        let cu = cluster_of.(u) and cv = cluster_of.(v) in
        if cu <> cv && not (Hashtbl.mem tbl (cu, cv)) then begin
          Hashtbl.add tbl (cu, cv) ();
          Builder.add_arc b cu cv
        end);
    match Builder.build b with
    | Ok q -> Ok q
    | Error msg -> Error ("quotient is not a dag: " ^ msg)
  end

let induced g ~keep =
  if Array.length keep <> g.n then invalid_arg "Dag.induced: length mismatch";
  let remap = Array.make g.n (-1) in
  let k = ref 0 in
  for v = 0 to g.n - 1 do
    if keep.(v) then begin
      remap.(v) <- !k;
      incr k
    end
  done;
  let labels =
    Option.map
      (fun ls ->
        let out = Array.make !k "" in
        Array.iteri (fun v l -> if keep.(v) then out.(remap.(v)) <- l) ls;
        out)
      g.labels
  in
  let b = Builder.create ?labels ~n:!k ~hint:(n_arcs g) () in
  iter_arcs g (fun u v ->
      if keep.(u) && keep.(v) then Builder.add_arc b remap.(u) remap.(v));
  (Builder.build_exn b, remap)

let equal g1 g2 =
  g1.n = g2.n && Slab.equal g1.soff g2.soff && Slab.equal g1.sdat g2.sdat

let pp ppf g =
  Format.fprintf ppf "@[<v>dag with %d nodes, %d arcs@," g.n (n_arcs g);
  iter_arcs g (fun u v ->
      Format.fprintf ppf "  %s -> %s@," (label g u) (label g v));
  Format.fprintf ppf "@]"

let to_dot g =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "digraph G {\n  rankdir=BT;\n";
  for v = 0 to g.n - 1 do
    Buffer.add_string buf (Printf.sprintf "  n%d [label=\"%s\"];\n" v (label g v))
  done;
  iter_arcs g (fun u v ->
      Buffer.add_string buf (Printf.sprintf "  n%d -> n%d;\n" u v));
  Buffer.add_string buf "}\n";
  Buffer.contents buf

(* --------------------------------------------------------- snapshots -- *)

(* Binary snapshot layout (host byte order for the slabs, little-endian
   header fields, an endianness sentinel guarding the mismatch case):

     offset  0  magic "ICDAGS01"                      (8 bytes)
     offset  8  n          as int64 LE
     offset 16  m          as int64 LE
     offset 24  n_sources  as int64 LE
     offset 32  label_bytes as int64 LE  (0 = unlabelled)
     offset 40  0x01020304 as int32 native-endian (endianness sentinel)
     offset 44  zero padding to 64
     offset 64  soff   (n+1 int32)  ┐ the four slabs, back to back —
                sdat   (m   int32)  │ [load] maps this whole region and
                poff   (n+1 int32)  │ takes O(1) sub-slab views, so
                pdat   (m   int32)  ┘ reload cost is independent of size
     then       label blob: per node, int32 LE byte length + bytes

   The header offset (64) is int32-aligned, so the slab region can be
   mapped directly as an int32 bigarray. *)

let snapshot_magic = "ICDAGS01"
let snapshot_header_bytes = 64
let endian_sentinel = 0x01020304l

let label_blob g =
  match g.labels with
  | None -> Bytes.create 0
  | Some ls ->
    let buf = Buffer.create 256 in
    Array.iter
      (fun l ->
        let len = Bytes.create 4 in
        Bytes.set_int32_le len 0 (Int32.of_int (String.length l));
        Buffer.add_bytes buf len;
        Buffer.add_string buf l)
      ls;
    Buffer.to_bytes buf

let write_all fd bytes =
  let len = Bytes.length bytes in
  let written = ref 0 in
  while !written < len do
    written := !written + Unix.write fd bytes !written (len - !written)
  done

let read_all fd bytes =
  let len = Bytes.length bytes in
  let got = ref 0 in
  let eof = ref false in
  while !got < len && not !eof do
    let k = Unix.read fd bytes !got (len - !got) in
    if k = 0 then eof := true else got := !got + k
  done;
  !got = len

let map_int32 fd ~pos ~len ~shared =
  Bigarray.array1_of_genarray
    (Unix.map_file fd ~pos:(Int64.of_int pos) Bigarray.int32 Bigarray.c_layout
       shared [| len |])

let save g path =
  Ic_prof.Span.time "dag.save" @@ fun () ->
  let n = g.n and m = n_arcs g in
  let blob = label_blob g in
  let slab_entries = (2 * (n + 1)) + (2 * m) in
  let total =
    snapshot_header_bytes + (4 * slab_entries) + Bytes.length blob
  in
  match
    let fd = Unix.openfile path [ Unix.O_RDWR; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
    Fun.protect
      ~finally:(fun () -> Unix.close fd)
      (fun () ->
        let header = Bytes.make snapshot_header_bytes '\000' in
        Bytes.blit_string snapshot_magic 0 header 0 8;
        Bytes.set_int64_le header 8 (Int64.of_int n);
        Bytes.set_int64_le header 16 (Int64.of_int m);
        Bytes.set_int64_le header 24 (Int64.of_int g.n_sources);
        Bytes.set_int64_le header 32 (Int64.of_int (Bytes.length blob));
        Bytes.set_int32_ne header 40 endian_sentinel;
        write_all fd header;
        if slab_entries > 0 then begin
          let region =
            map_int32 fd ~pos:snapshot_header_bytes ~len:slab_entries
              ~shared:true
          in
          let pos = ref 0 in
          let put s =
            let len = Slab.length s in
            if len > 0 then Slab.blit s (Slab.sub region !pos len);
            pos := !pos + len
          in
          put g.soff;
          put g.sdat;
          put g.poff;
          put g.pdat
        end;
        if Bytes.length blob > 0 then begin
          ignore
            (Unix.lseek fd
               (snapshot_header_bytes + (4 * slab_entries))
               Unix.SEEK_SET);
          write_all fd blob
        end
        else
          (* the mapping may outlive the fd; make sure the file has its
             full size even when the last slab is empty *)
          Unix.ftruncate fd total)
  with
  | () -> Ok ()
  | exception Unix.Unix_error (e, _, _) ->
    Error (Printf.sprintf "%s: %s" path (Unix.error_message e))
  | exception Sys_error msg -> Error msg

let parse_labels blob n =
  let len = Bytes.length blob in
  let pos = ref 0 in
  match
    Array.init n (fun _ ->
        if !pos + 4 > len then raise Exit;
        let k = Int32.to_int (Bytes.get_int32_le blob !pos) in
        if k < 0 || !pos + 4 + k > len then raise Exit;
        let s = Bytes.sub_string blob (!pos + 4) k in
        pos := !pos + 4 + k;
        s)
  with
  | ls when !pos = len -> Some ls
  | _ -> None
  | exception Exit -> None

let load path =
  Ic_prof.Span.time "dag.load" @@ fun () ->
  match
    let fd = Unix.openfile path [ Unix.O_RDONLY ] 0 in
    Fun.protect
      ~finally:(fun () -> Unix.close fd)
      (fun () ->
        let size = (Unix.fstat fd).Unix.st_size in
        if size < snapshot_header_bytes then Error "truncated snapshot header"
        else begin
          let header = Bytes.create snapshot_header_bytes in
          if not (read_all fd header) then Error "truncated snapshot header"
          else if Bytes.sub_string header 0 8 <> snapshot_magic then
            Error "not an ic-dag snapshot (bad magic)"
          else if Bytes.get_int32_ne header 40 <> endian_sentinel then
            Error "snapshot was written on a machine with different byte order"
          else begin
            let geti off =
              let x = Bytes.get_int64_le header off in
              if Int64.compare x 0L < 0 || Int64.compare x (Int64.of_int Slab.max_value) > 0
              then -1
              else Int64.to_int x
            in
            let n = geti 8 and m = geti 16 in
            let n_sources = geti 24 and label_bytes = geti 32 in
            if n < 0 || m < 0 || label_bytes < 0 || n_sources < 0 || n_sources > n
            then Error "corrupt snapshot header"
            else begin
              let slab_entries = (2 * (n + 1)) + (2 * m) in
              let expected =
                snapshot_header_bytes + (4 * slab_entries) + label_bytes
              in
              if size <> expected then
                Error
                  (Printf.sprintf "snapshot size mismatch (%d bytes, want %d)"
                     size expected)
              else begin
                let region =
                  map_int32 fd ~pos:snapshot_header_bytes ~len:slab_entries
                    ~shared:false
                in
                let soff = Slab.sub region 0 (n + 1) in
                let sdat = Slab.sub region (n + 1) m in
                let poff = Slab.sub region (n + 1 + m) (n + 1) in
                let pdat = Slab.sub region ((2 * (n + 1)) + m) m in
                if
                  Slab.get soff 0 <> 0
                  || Slab.get soff n <> m
                  || Slab.get poff 0 <> 0
                  || Slab.get poff n <> m
                then Error "corrupt snapshot (offset tables)"
                else begin
                  let labels =
                    if label_bytes = 0 then Ok None
                    else begin
                      ignore
                        (Unix.lseek fd
                           (snapshot_header_bytes + (4 * slab_entries))
                           Unix.SEEK_SET);
                      let blob = Bytes.create label_bytes in
                      if not (read_all fd blob) then Error "truncated labels"
                      else
                        match parse_labels blob n with
                        | Some ls -> Ok (Some ls)
                        | None -> Error "corrupt snapshot (label blob)"
                    end
                  in
                  match labels with
                  | Error e -> Error e
                  | Ok labels ->
                    Ok { n; soff; sdat; poff; pdat; labels; n_sources }
                end
              end
            end
          end
        end)
  with
  | r -> r
  | exception Unix.Unix_error (e, _, _) ->
    Error (Printf.sprintf "%s: %s" path (Unix.error_message e))
  | exception Sys_error msg -> Error msg
