let run g s = Frontier.profile g ~order:(Schedule.order s)

let check_nonsinks_first g s =
  let order = Schedule.order s in
  let seen_sink = ref false in
  Array.iter
    (fun v ->
      if Dag.is_sink g v then seen_sink := true
      else if !seen_sink then
        invalid_arg "Profile: schedule does not execute all nonsinks before sinks")
    order

let nonsink_profile g s =
  check_nonsinks_first g s;
  let full = run g s in
  Array.sub full 0 (Dag.n_nonsinks g + 1)

let of_set g ~executed =
  if Array.length executed <> Dag.n_nodes g then
    invalid_arg "Profile.of_set: length mismatch";
  Frontier.count (Frontier.of_set g ~executed)

let packets g s =
  check_nonsinks_first g s;
  let k = Dag.n_nonsinks g in
  let order = Schedule.order s in
  let fr = Frontier.create g in
  let packets = Array.make k [] in
  for t = 0 to k - 1 do
    let made = ref [] in
    Frontier.execute fr ~on_promote:(fun w -> made := w :: !made) order.(t);
    packets.(t) <- List.rev !made
  done;
  packets

let dominates p q =
  Array.length p = Array.length q
  && (let ok = ref true in
      Array.iteri (fun t x -> if x < q.(t) then ok := false) p;
      !ok)

let strictly_dominates p q =
  dominates p q
  && (let strict = ref false in
      Array.iteri (fun t x -> if x > q.(t) then strict := true) p;
      !strict)

let pp ppf p =
  Format.fprintf ppf "@[<hov 2>[";
  Array.iteri
    (fun i x ->
      if i > 0 then Format.fprintf ppf ";@ ";
      Format.pp_print_int ppf x)
    p;
  Format.fprintf ppf "]@]"
