(** A shard-partitioned view of a dag's eligibility frontier.

    Where {!Frontier} tracks eligibility for one sequential driver, a
    shard view splits the same bookkeeping across [n_shards] disjoint
    node partitions so independent pools (one per shard, each behind its
    own lock in the caller) can hand out eligible tasks concurrently.
    The view owns only the {e dependence} side of the state — one
    remaining-predecessor count per node, decremented with an atomic
    fetch-and-add exactly as the parallel runtime's packed counts are —
    and reports each node that becomes eligible, tagged with its owning
    shard, through a callback. What the caller does with a newly
    eligible node (push it into a locked per-shard pool, lease it over a
    socket) is its business; the view guarantees that each node is
    reported eligible exactly once, on the {!complete} call of its last
    outstanding predecessor, from whichever thread made it.

    Nodes are partitioned into contiguous blocks (node [v] belongs to
    shard [v / ceil (n / n_shards)]), so the families' level-ordered
    numbering keeps most arcs shard-local.

    Thread-safety: {!complete} may be called from any thread, but each
    node must be completed at most once — the caller's exactly-once
    completion logic (e.g. the served state machine's done-bitset) is
    what establishes that. *)

type t

val create : ?n_shards:int -> Dag.t -> t
(** [create ~n_shards g] partitions [g] and initializes every node's
    remaining-predecessor count. [n_shards] (default 1) is clamped to
    [1 .. max 1 (n_nodes g)]. [O(n)]. *)

val dag : t -> Dag.t
val n_nodes : t -> int

val n_shards : t -> int
(** The clamped shard count actually in use. *)

val shard_of : t -> int -> int
(** Owning shard of a node; [O(1)]. Raises [Invalid_argument] out of
    range. *)

val shard_size : t -> int -> int
(** Number of nodes owned by a shard. *)

val iter_initial : t -> (shard:int -> int -> unit) -> unit
(** Apply to every initially eligible node (the dag's sources) with its
    owning shard, in ascending node order — the pool-seeding loop. *)

val complete : t -> int -> ready:(shard:int -> int -> unit) -> unit
(** [complete t v ~ready] records [v] executed and calls
    [ready ~shard u] for each successor [u] whose last remaining
    predecessor was [v] (ascending order within [v]'s successor list).
    Safe from any thread; each node must be completed at most once, and
    only after it was reported eligible. *)

val completed : t -> int
(** Number of {!complete} calls so far. [O(1)], atomic read. *)

val is_complete : t -> bool
(** Have all [n_nodes] nodes been completed? *)
