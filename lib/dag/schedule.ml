type t = int array

let order s = s
let length = Array.length

let validate g a =
  let n = Dag.n_nodes g in
  if Array.length a <> n then
    Error (Printf.sprintf "schedule has %d entries, dag has %d nodes" (Array.length a) n)
  else begin
    let pos = Array.make n (-1) in
    let dup = ref None in
    Array.iteri
      (fun i v ->
        if v < 0 || v >= n then dup := Some (Printf.sprintf "node %d out of range" v)
        else if pos.(v) >= 0 then dup := Some (Printf.sprintf "node %d scheduled twice" v)
        else pos.(v) <- i)
      a;
    match !dup with
    | Some msg -> Error msg
    | None ->
      let bad = ref None in
      for v = 0 to n - 1 do
        Dag.iter_pred g v (fun p ->
            if pos.(p) > pos.(v) && !bad = None then
              bad :=
                Some
                  (Printf.sprintf "node %s executed before its parent %s"
                     (Dag.label g v) (Dag.label g p)))
      done;
      (match !bad with Some msg -> Error msg | None -> Ok a)
  end

let of_order g nodes = validate g (Array.of_list nodes)

let of_order_exn g nodes =
  match of_order g nodes with
  | Ok s -> s
  | Error msg -> invalid_arg ("Schedule.of_order_exn: " ^ msg)

let of_array_exn g a =
  match validate g (Array.copy a) with
  | Ok s -> s
  | Error msg -> invalid_arg ("Schedule.of_array_exn: " ^ msg)

let of_nonsink_order g nonsinks =
  let sinks = Dag.sinks g in
  validate g (Array.of_list (nonsinks @ sinks))

let of_nonsink_order_exn g nonsinks =
  match of_nonsink_order g nonsinks with
  | Ok s -> s
  | Error msg -> invalid_arg ("Schedule.of_nonsink_order_exn: " ^ msg)

let natural g = Dag.topological_order g

let nonsink_prefix g s =
  Array.to_list s |> List.filter (fun v -> not (Dag.is_sink g v))

let prefix_set s t =
  let marked = Array.make (Array.length s) false in
  for i = 0 to t - 1 do
    marked.(s.(i)) <- true
  done;
  marked

let nonsinks_first g s =
  let seen_sink = ref false and ok = ref true in
  Array.iter
    (fun v ->
      if Dag.is_sink g v then seen_sink := true else if !seen_sink then ok := false)
    s;
  !ok

let is_valid g a = match validate g a with Ok _ -> true | Error _ -> false

let pp g ppf s =
  Format.fprintf ppf "@[<hov 2>[";
  Array.iteri
    (fun i v ->
      if i > 0 then Format.fprintf ppf ";@ ";
      Format.pp_print_string ppf (Dag.label g v))
    s;
  Format.fprintf ppf "]@]"
