(* The eligible set is a dense pool with positions: [pool.(0 .. count-1)]
   are the eligible nodes (unordered), [pos.(v)] is [v]'s index in the pool
   while eligible. Executes swap-remove from the pool and append promoted
   children, so membership updates are O(1) and the eligibility count is a
   field read.

   Executedness is encoded in [remaining]: [remaining.(v) = r >= 0] means
   [v] is unexecuted with [r] unexecuted parents (eligible iff [r = 0]);
   [remaining.(v) = -r - 1 < 0] means [v] is executed and had [r]
   unexecuted parents when it was (always 0 on the execute path; nonzero
   only for non-ideal sets given to [of_set]). This keeps the per-node
   state in one cache-friendly array and makes undo a negation.

   The adjacency read in the hot loops is the dag's successor CSR slabs
   ({!Slab.t}, off-heap int32), shared with the dag — reads compile to
   unboxed loads.

   The trail records the execution order for [restore]; it is allocated on
   the first [snapshot], so pure replay consumers never pay for it.

   Unsafe accesses below are justified by the construction invariants:
   every node id handled comes from the dag's adjacency (so is in [0, n)),
   and the pool holds exactly [count <= n] entries. *)

module A1 = Bigarray.Array1

type observer = { on_push : int -> unit; on_pop : int -> unit }

type t = {
  g : Dag.t;
  off : Slab.t;  (* CSR successor adjacency, shared with the dag *)
  dat : Slab.t;
  remaining : int array;
  pool : int array;
  pos : int array;
  mutable trail : int array;  (* [||] until the first snapshot *)
  mutable floor : int;  (* n_executed when the trail was allocated *)
  mutable count : int;  (* eligible nodes = pool.(0 .. count-1) *)
  mutable n_executed : int;
  mutable executes : int;
  mutable promotions : int;
  mutable restores : int;
  mutable observer : observer option;
}

let dag t = t.g
let count t = t.count
let executed_count t = t.n_executed

let make_state g remaining pool count n_executed =
  {
    g;
    off = Dag.succ_offsets g;
    dat = Dag.succ_targets g;
    remaining;
    pool;
    pos = Array.make (Array.length remaining) 0;
    trail = [||];
    floor = n_executed;
    count;
    n_executed;
    executes = 0;
    promotions = 0;
    restores = 0;
    observer = None;
  }

let set_observer t o = t.observer <- o

let create g =
  Ic_prof.Span.enter "frontier.create";
  let n = Dag.n_nodes g in
  let remaining = Dag.in_degrees g in
  let pool = Array.make n 0 in
  let count = ref 0 in
  let t = make_state g remaining pool 0 0 in
  for v = 0 to n - 1 do
    if Array.unsafe_get remaining v = 0 then begin
      Array.unsafe_set pool !count v;
      Array.unsafe_set t.pos v !count;
      incr count
    end
  done;
  t.count <- !count;
  Ic_prof.Span.leave ();
  t

let of_set g ~executed =
  let n = Dag.n_nodes g in
  if Array.length executed <> n then
    invalid_arg "Frontier.of_set: length mismatch";
  let poff = Dag.pred_offsets g and pdat = Dag.pred_sources g in
  let remaining = Array.make n 0 in
  let pool = Array.make n 0 in
  let count = ref 0 and n_executed = ref 0 in
  let t = make_state g remaining pool 0 0 in
  for v = 0 to n - 1 do
    let unmet = ref 0 in
    for i = Slab.get poff v to Slab.get poff (v + 1) - 1 do
      if not executed.(Slab.unsafe_get pdat i) then incr unmet
    done;
    let unmet = !unmet in
    if executed.(v) then begin
      remaining.(v) <- -unmet - 1;
      incr n_executed
    end
    else begin
      remaining.(v) <- unmet;
      if unmet = 0 then begin
        pool.(!count) <- v;
        t.pos.(v) <- !count;
        incr count
      end
    end
  done;
  t.count <- !count;
  t.n_executed <- !n_executed;
  t.floor <- !n_executed;
  t

let in_range t v = v >= 0 && v < Array.length t.remaining
let is_executed t v = in_range t v && t.remaining.(v) < 0
let is_eligible t v = in_range t v && t.remaining.(v) = 0

let members t =
  let a = Array.sub t.pool 0 t.count in
  Array.sort compare a;
  a

let to_list t = Array.to_list (members t)
let iter f t = Array.iter f (members t)
let choose t = if t.count = 0 then None else Some t.pool.(t.count - 1)

let execute ?on_promote t v =
  if not (is_eligible t v) then
    invalid_arg
      (if in_range t v then
         if t.remaining.(v) < 0 then "Frontier.execute: node already executed"
         else "Frontier.execute: node not eligible"
       else "Frontier.execute: node out of range");
  Ic_prof.Span.enter "frontier.execute";
  (* swap-remove v from the pool *)
  let last = t.count - 1 in
  let pv = Array.unsafe_get t.pos v in
  let moved = Array.unsafe_get t.pool last in
  Array.unsafe_set t.pool pv moved;
  Array.unsafe_set t.pos moved pv;
  t.count <- last;
  Array.unsafe_set t.remaining v (-1);
  if t.trail != [||] then Array.unsafe_set t.trail t.n_executed v;
  t.n_executed <- t.n_executed + 1;
  t.executes <- t.executes + 1;
  let observer = t.observer in
  (match observer with None -> () | Some o -> o.on_pop v);
  let off = t.off and dat = t.dat in
  for i = Slab.unsafe_get off v to Slab.unsafe_get off (v + 1) - 1 do
    let w = Slab.unsafe_get dat i in
    let r = Array.unsafe_get t.remaining w - 1 in
    Array.unsafe_set t.remaining w r;
    if r = 0 then begin
      Array.unsafe_set t.pool t.count w;
      Array.unsafe_set t.pos w t.count;
      t.count <- t.count + 1;
      t.promotions <- t.promotions + 1;
      (match observer with None -> () | Some o -> o.on_push w);
      match on_promote with None -> () | Some f -> f w
    end
  done;
  Ic_prof.Span.leave ()

type snapshot = int

let snapshot t =
  if t.trail == [||] then begin
    t.trail <- Array.make (Array.length t.remaining) 0;
    t.floor <- t.n_executed
  end;
  t.n_executed

let restore t snap =
  if snap < t.floor || snap > t.n_executed || (snap < t.n_executed && t.trail == [||])
  then invalid_arg "Frontier.restore: stale snapshot";
  Ic_prof.Span.enter "frontier.restore";
  t.restores <- t.restores + 1;
  while t.n_executed > snap do
    let v = t.trail.(t.n_executed - 1) in
    t.n_executed <- t.n_executed - 1;
    (* children of v executed after v have already been undone, so any
       child with no unexecuted parent is currently in the pool *)
    let off = t.off and dat = t.dat in
    for i = Slab.unsafe_get off v to Slab.unsafe_get off (v + 1) - 1 do
      let w = Slab.unsafe_get dat i in
      if Array.unsafe_get t.remaining w = 0 then begin
        let last = t.count - 1 in
        let pw = Array.unsafe_get t.pos w in
        let moved = Array.unsafe_get t.pool last in
        Array.unsafe_set t.pool pw moved;
        Array.unsafe_set t.pos moved pw;
        t.count <- last
      end;
      Array.unsafe_set t.remaining w (Array.unsafe_get t.remaining w + 1)
    done;
    let r = -t.remaining.(v) - 1 in
    t.remaining.(v) <- r;
    if r = 0 then begin
      t.pool.(t.count) <- v;
      t.pos.(v) <- t.count;
      t.count <- t.count + 1
    end
  done;
  Ic_prof.Span.leave ()

(* Bulk replay: the whole profile of an execution order in one tight pass,
   without pool, position or trail upkeep. This is the hot path behind
   [Profile.run]; the order is trusted to be a schedule of [g] (which
   [Schedule.t] guarantees), like the callers it replaced.

   The remaining-parents scratch is the only per-call state besides the
   result, and it is tiered by the dag's maximum in-degree:

     - packed8   ([Bytes.t], 1 byte/node)  when every in-degree <= 255 —
       every dag of the paper's families (meshes and butterflies have
       in-degree <= 2);
     - packed16  (uint16 bigarray, 2 bytes/node, off-heap) when every
       in-degree <= 65535 — reduction trees and other wide-fan-in dags
       stay GC-invisible and cache-lean at the 10^8-node scale;
     - unpacked  (int array, 8 bytes/node) beyond that.

   Each run bumps the matching counter below; [record_scratch_metrics]
   publishes them to an [Ic_obs.Metrics] registry, so the silent-fallback
   behaviour the tiers replace is now observable.

   [profile_raw] is the bare loop; [profile] adds the span. The raw entry
   point stays exposed so the bench harness can compare instrumented
   against truly un-instrumented code in the same process when measuring
   the disabled-path overhead. *)

type scratch_tier = Packed8 | Packed16 | Unpacked

let scratch_tier g =
  let poff = Dag.pred_offsets g in
  let n = Dag.n_nodes g in
  let max_in = ref 0 in
  for v = 0 to n - 1 do
    let d = Slab.unsafe_get poff (v + 1) - Slab.unsafe_get poff v in
    if d > !max_in then max_in := d
  done;
  if !max_in <= 255 then Packed8
  else if !max_in <= 65535 then Packed16
  else Unpacked

let fill_remaining g f =
  let poff = Dag.pred_offsets g in
  let n = Dag.n_nodes g in
  for v = 0 to n - 1 do
    f v (Slab.unsafe_get poff (v + 1) - Slab.unsafe_get poff v)
  done

type scratch_counts = { packed8 : int; packed16 : int; unpacked : int }

let packed8_runs = ref 0
let packed16_runs = ref 0
let unpacked_runs = ref 0

let scratch_counts () =
  { packed8 = !packed8_runs; packed16 = !packed16_runs; unpacked = !unpacked_runs }

let record_scratch_metrics registry =
  let sync name total =
    let c = Ic_obs.Metrics.counter registry name in
    let behind = total - Ic_obs.Metrics.counter_value c in
    if behind > 0 then Ic_obs.Metrics.incr ~by:behind c
  in
  sync "frontier.profile.scratch_packed8" !packed8_runs;
  sync "frontier.profile.scratch_packed16" !packed16_runs;
  sync "frontier.profile.scratch_unpacked" !unpacked_runs

let profile_raw g ~order =
  let n = Dag.n_nodes g in
  if Array.length order <> n then
    invalid_arg "Frontier.profile: order length mismatch";
  let off = Dag.succ_offsets g and dat = Dag.succ_targets g in
  let poff = Dag.pred_offsets g in
  let out = Array.make (n + 1) 0 in
  let n_sources = Dag.n_sources g in
  let count = ref n_sources in
  Array.unsafe_set out 0 n_sources;
  (* the init loops below are [fill_remaining] hand-inlined per tier:
     a closure call per node costs ~30% on mesh-256, and this is the
     gated hot path *)
  (match scratch_tier g with
  | Packed8 ->
    incr packed8_runs;
    let remaining = Bytes.create n in
    for v = 0 to n - 1 do
      Bytes.unsafe_set remaining v
        (Char.unsafe_chr (Slab.unsafe_get poff (v + 1) - Slab.unsafe_get poff v))
    done;
    for i = 0 to n - 1 do
      let v = Array.unsafe_get order i in
      if v < 0 || v >= n then invalid_arg "Frontier.profile: node out of range";
      let c = ref (!count - 1) in
      for j = Slab.unsafe_get off v to Slab.unsafe_get off (v + 1) - 1 do
        let w = Slab.unsafe_get dat j in
        let r = Char.code (Bytes.unsafe_get remaining w) - 1 in
        Bytes.unsafe_set remaining w (Char.unsafe_chr r);
        if r = 0 then incr c
      done;
      count := !c;
      Array.unsafe_set out (i + 1) !c
    done
  | Packed16 ->
    incr packed16_runs;
    (* uint16 bigarray: off-heap, 2 bytes/node, reads/writes are plain
       ints — no boxing on any middle-end *)
    let remaining = A1.create Bigarray.int16_unsigned Bigarray.c_layout n in
    for v = 0 to n - 1 do
      A1.unsafe_set remaining v
        (Slab.unsafe_get poff (v + 1) - Slab.unsafe_get poff v)
    done;
    for i = 0 to n - 1 do
      let v = Array.unsafe_get order i in
      if v < 0 || v >= n then invalid_arg "Frontier.profile: node out of range";
      let c = ref (!count - 1) in
      for j = Slab.unsafe_get off v to Slab.unsafe_get off (v + 1) - 1 do
        let w = Slab.unsafe_get dat j in
        let r = A1.unsafe_get remaining w - 1 in
        A1.unsafe_set remaining w r;
        if r = 0 then incr c
      done;
      count := !c;
      Array.unsafe_set out (i + 1) !c
    done
  | Unpacked ->
    incr unpacked_runs;
    let remaining = Dag.in_degrees g in
    for i = 0 to n - 1 do
      let v = Array.unsafe_get order i in
      if v < 0 || v >= n then invalid_arg "Frontier.profile: node out of range";
      let c = ref (!count - 1) in
      for j = Slab.unsafe_get off v to Slab.unsafe_get off (v + 1) - 1 do
        let w = Slab.unsafe_get dat j in
        let r = Array.unsafe_get remaining w - 1 in
        Array.unsafe_set remaining w r;
        if r = 0 then incr c
      done;
      count := !c;
      Array.unsafe_set out (i + 1) !c
    done);
  out

let profile g ~order =
  if not (Ic_prof.Span.enabled ()) then profile_raw g ~order
  else begin
    Ic_prof.Span.enter "frontier.profile";
    match profile_raw g ~order with
    | out ->
      Ic_prof.Span.leave ();
      out
    | exception e ->
      Ic_prof.Span.leave ();
      raise e
  end

type stats = { executes : int; promotions : int; restores : int }

let stats (t : t) =
  { executes = t.executes; promotions = t.promotions; restores = t.restores }
