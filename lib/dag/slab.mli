(** Off-heap int32 slabs: the storage primitive behind the CSR dag core.

    A slab is a [Bigarray] of 32-bit integers in C layout. Slabs live
    outside the OCaml heap, so the GC never scans them (a 10^8-entry slab
    adds zero marking work), they cost 4 bytes per entry instead of a
    boxed-word 8, and — because a [Bigarray] can view a memory-mapped
    file — a built dag can be reloaded in O(1) from a snapshot
    ({!Dag.save}/{!Dag.load}).

    Accessors exchange plain [int]s; the [int32] conversion compiles to a
    sign-extension with no boxing (verified allocation-free on both the
    Closure and flambda middle-ends). Values must fit in 32 bits: node
    ids and arc counts are bounded by {!max_value}, which every [Dag]
    constructor enforces. *)

type t = (int32, Bigarray.int32_elt, Bigarray.c_layout) Bigarray.Array1.t
(** The representation is exposed so hot loops (Frontier, Builder) can use
    [Bigarray.Array1] primitives directly and so [Unix.map_file] views can
    be passed in as slabs. *)

val max_value : int
(** Largest value a slab entry can hold ([2^31 - 1]); also the largest
    node count and arc count a CSR dag supports. *)

val create : int -> t
(** [create len] is a fresh zero-filled slab of [len] entries. *)

val length : t -> int

val get : t -> int -> int
(** Bounds-checked read. *)

val set : t -> int -> int -> unit
(** Bounds-checked write; the value is truncated to 32 bits. *)

val unsafe_get : t -> int -> int
(** Unchecked read, for loops whose indices are proven in range. *)

val unsafe_set : t -> int -> int -> unit

val fill : t -> int -> unit
(** Set every entry. *)

val blit : t -> t -> unit
(** Copy [src] into [dst]; lengths must match. *)

val sub : t -> int -> int -> t
(** [sub s pos len] shares storage with [s] — no copy. *)

val copy : t -> t

val of_int_array : int array -> t
val to_int_array : ?pos:int -> ?len:int -> t -> int array

val equal : t -> t -> bool
(** Same length and contents. *)

val sort_range : t -> lo:int -> hi:int -> unit
(** Sort entries [lo .. hi-1] ascending, in place: insertion sort for
    short runs, heapsort above that (no allocation, no recursion). *)
