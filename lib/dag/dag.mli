(** Computation-dags.

    A dag models a computation: nodes are tasks, an arc [u -> v] means task
    [v] cannot be executed before task [u] (Section 2.1 of the paper). Nodes
    are the integers [0 .. n_nodes - 1]. Values of type {!t} are immutable
    and validated at construction: no self-loops, no duplicate arcs, no
    cycles.

    The representation is CSR-native and off-heap: both successor and
    predecessor adjacency live in flat offset/data {!Slab.t} slabs
    (Bigarray-backed int32, 4 bytes per entry) built once at construction,
    so every traversal is a contiguous scan, the GC never visits the
    adjacency, and node/arc counts are bounded by {!Slab.max_value}. A
    built dag can be written to a binary snapshot and memory-mapped back in
    O(1) ({!save}/{!load}). *)

type t

(** {1 Construction} *)

(** Growable arc buffer for constructing dags without intermediate arc
    lists: family generators emit arcs straight into one flat off-heap
    byte buffer, and {!Builder.build} turns it into both CSR directions in
    [O(n + m)] streaming passes, with the same validation as {!make}.

    In streaming mode ([spill_arcs], or the [IC_BUILDER_SPILL] environment
    variable) the buffer is flushed to an unlinked temp file in fixed-size
    chunks, so a dag of any size can be built with peak builder memory of
    one chunk — the edge list is never materialized in process memory. *)
module Builder : sig
  type dag = t

  type t
  (** A mutable arc buffer targeted at a fixed node count. *)

  val create :
    ?labels:string array ->
    n:int ->
    ?hint:int ->
    ?spill_arcs:int ->
    unit ->
    t
  (** [create ~n ~hint ()] starts a buffer for a dag with nodes [0..n-1];
      [hint] (default 16) preallocates space for that many arcs.

      [spill_arcs], when given (must be positive), bounds the in-memory
      buffer: each time that many arcs are pending they are flushed to an
      unlinked temp file, and {!build} streams them back. When absent, the
      [IC_BUILDER_SPILL] environment variable (a positive integer) supplies
      the default, so family constructors stream without signature changes;
      otherwise the buffer grows in memory (8 bytes per arc). *)

  val add_arc : t -> int -> int -> unit
  (** [add_arc b u v] appends the arc [u -> v]. Amortized [O(1)]; no
      validation happens until {!build}. *)

  val n_pending : t -> int
  (** Number of arcs buffered so far (in memory plus spilled). *)

  val spilled : t -> bool
  (** Has any chunk been flushed to the temp file? *)

  val build : t -> (dag, string) result
  (** Validate and freeze: fails with a descriptive message on a negative
      node count, label length mismatch, out-of-range endpoints,
      self-loops, duplicate arcs, or cycles. The builder may be reused (and
      added to) afterwards; the built dag shares nothing with it. *)

  val build_exn : t -> dag
  (** Like {!build} but raises [Invalid_argument] on bad input. *)
end

val make : ?labels:string array -> n:int -> arcs:(int * int) list -> unit ->
  (t, string) result
(** [make ~n ~arcs ()] builds a dag with nodes [0..n-1] and the given arcs.
    Fails with a descriptive message on out-of-range endpoints, self-loops,
    duplicate arcs, or cycles. [labels], when given, must have length [n].
    A convenience wrapper over {!Builder}. *)

val make_exn : ?labels:string array -> n:int -> arcs:(int * int) list -> unit -> t
(** Like {!make} but raises [Invalid_argument] on bad input. *)

val empty : int -> t
(** [empty n] is the dag with [n] nodes and no arcs ([n >= 0]). *)

val sum : t -> t -> t
(** [sum g1 g2] is the disjoint sum [g1 + g2]: nodes of [g2] are shifted up
    by [n_nodes g1]. *)

val dual : t -> t
(** [dual g] reverses every arc of [g] (Section 2.3.2), interchanging sources
    and sinks. Node numbering is preserved; [O(n)] — the CSR directions are
    swapped, not rebuilt. *)

val relabel : t -> string array -> t
(** [relabel g labels] replaces node labels; [Array.length labels] must equal
    [n_nodes g]. *)

(** {1 Snapshots}

    Binary snapshot of a built dag: the four CSR slabs raw (host byte
    order, with an endianness sentinel), a fixed 64-byte header, and the
    label table when present. {!load} memory-maps the slab region, so
    reloading a multi-gigabyte dag costs O(1) time and no heap — pages
    fault in lazily as the dag is traversed. *)

val save : t -> string -> (unit, string) result
(** [save g path] writes [g] to [path] (overwriting). *)

val load : string -> (t, string) result
(** [load path] maps a snapshot back as a dag. The adjacency is a private
    (copy-on-write) mapping of the file: valid as long as the value lives,
    never written back. Fails with a descriptive message on a bad magic,
    foreign byte order, or a size/offset-table mismatch; the full
    structural validation of {!Builder.build} is {e not} re-run. *)

(** {1 Accessors} *)

val n_nodes : t -> int
val n_arcs : t -> int

val n_sources : t -> int
(** Number of parentless nodes. [O(1)]. *)

val succ : t -> int -> int array
(** Children of a node, ascending, as a {e fresh} array ([O(out-degree)]
    allocation per call). Hot loops should use {!iter_succ}/{!fold_succ} or
    the raw CSR accessors instead. *)

val pred : t -> int -> int array
(** Parents counterpart of {!succ}; also allocates. *)

val iter_succ : t -> int -> (int -> unit) -> unit
(** Apply to each child, ascending. Allocation-free. *)

val iter_pred : t -> int -> (int -> unit) -> unit
(** Apply to each parent, ascending. Allocation-free. *)

val fold_succ : t -> int -> 'a -> ('a -> int -> 'a) -> 'a
(** [fold_succ g v init f] folds over children, ascending. *)

val fold_pred : t -> int -> 'a -> ('a -> int -> 'a) -> 'a
(** Parents counterpart of {!fold_succ}. *)

(** {2 Raw CSR}

    The flat adjacency slabs themselves, shared with the dag — they must
    not be mutated. Children of [v] are entries
    [succ_offsets.{v} .. succ_offsets.{v+1} - 1] of [succ_targets],
    ascending; parents likewise via [pred_offsets]/[pred_sources]. For hot
    loops (the {!Frontier} engine) that cannot afford closure calls: read
    with {!Slab.unsafe_get} or [Bigarray.Array1] primitives. *)

val succ_offsets : t -> Slab.t
(** Length [n + 1]. *)

val succ_targets : t -> Slab.t
val pred_offsets : t -> Slab.t
val pred_sources : t -> Slab.t

val in_degrees : t -> int array
(** In-degree per node as a fresh, caller-owned array. [O(n)]. *)

val iter_arcs : t -> (int -> int -> unit) -> unit
(** [iter_arcs g f] applies [f u v] to every arc in (source, target)
    lexicographic order. Allocation-free. *)

val fold_arcs : t -> 'a -> ('a -> int -> int -> 'a) -> 'a
(** [fold_arcs g init f] folds [f acc u v] over arcs in lexicographic
    order. *)

val arcs : t -> (int * int) list
  [@@deprecated "allocates two words per arc; use Dag.iter_arcs or Dag.fold_arcs"]
(** Arcs in lexicographic order, as a list. Compatibility wrapper over
    {!iter_arcs}; allocates two words per arc — use the iterators. *)

val out_degree : t -> int -> int
(** [O(1)]. *)

val in_degree : t -> int -> int
(** [O(1)]. *)

val has_arc : t -> int -> int -> bool
(** [O(log out-degree)]. *)

val label : t -> int -> string
(** Defaults to the decimal node id when no labels were supplied. *)

val has_labels : t -> bool
(** Were explicit labels supplied at construction? *)

val find_label : t -> string -> int option
(** First node carrying the given label, if any. *)

(** {1 Sources, sinks and structure} *)

val is_source : t -> int -> bool
(** Parentless. [O(1)]. *)

val is_sink : t -> int -> bool
(** Childless. [O(1)]. *)

val sources : t -> int list
val sinks : t -> int list
val nonsinks : t -> int list
val nonsources : t -> int list
val n_nonsinks : t -> int
val n_nonsources : t -> int

val topological_order : t -> int array
(** Some topological order of all nodes (sources first, Kahn's algorithm). *)

val is_connected : t -> bool
(** Connectivity of the underlying undirected graph. The empty dag ([n = 0])
    is connected; so is a single node. *)

val depth : t -> int array
(** [depth g].(v) = length of the longest arc-path from any source to [v]
    (sources have depth 0). *)

val height : t -> int array
(** [height g].(v) = length of the longest arc-path from [v] to any sink
    (sinks have height 0). *)

val longest_path : t -> int
(** Number of arcs on a longest path; 0 for an arcless dag. *)

(** {1 Transformation} *)

val map_nodes : t -> perm:int array -> t
(** [map_nodes g ~perm] renames node [v] to [perm.(v)]; [perm] must be a
    permutation of [0..n-1]. Labels follow their nodes. *)

val quotient : t -> cluster_of:int array -> n_clusters:int -> (t, string) result
(** [quotient g ~cluster_of ~n_clusters] contracts each cluster to a single
    node (cluster ids must cover [0 .. n_clusters-1]); arcs between distinct
    clusters are kept (deduplicated). Fails if the result has a cycle, i.e.
    if the clustering is not convex enough to stay acyclic. *)

val induced : t -> keep:bool array -> t * int array
(** [induced g ~keep] is the sub-dag induced by the kept nodes together with
    the map from old node ids to new ids (-1 for dropped nodes). *)

(** {1 Equality and output} *)

val equal : t -> t -> bool
(** Structural equality on the same node numbering (labels ignored). *)

val pp : Format.formatter -> t -> unit
val to_dot : t -> string
(** GraphViz rendering, for debugging and the CLI. *)
