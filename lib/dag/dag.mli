(** Computation-dags.

    A dag models a computation: nodes are tasks, an arc [u -> v] means task
    [v] cannot be executed before task [u] (Section 2.1 of the paper). Nodes
    are the integers [0 .. n_nodes - 1]. Values of type {!t} are immutable
    and validated at construction: no self-loops, no duplicate arcs, no
    cycles. *)

type t

(** {1 Construction} *)

val make : ?labels:string array -> n:int -> arcs:(int * int) list -> unit ->
  (t, string) result
(** [make ~n ~arcs ()] builds a dag with nodes [0..n-1] and the given arcs.
    Fails with a descriptive message on out-of-range endpoints, self-loops,
    duplicate arcs, or cycles. [labels], when given, must have length [n]. *)

val make_exn : ?labels:string array -> n:int -> arcs:(int * int) list -> unit -> t
(** Like {!make} but raises [Invalid_argument] on bad input. *)

val empty : int -> t
(** [empty n] is the dag with [n] nodes and no arcs ([n >= 0]). *)

val sum : t -> t -> t
(** [sum g1 g2] is the disjoint sum [g1 + g2]: nodes of [g2] are shifted up
    by [n_nodes g1]. *)

val dual : t -> t
(** [dual g] reverses every arc of [g] (Section 2.3.2), interchanging sources
    and sinks. Node numbering is preserved. *)

val relabel : t -> string array -> t
(** [relabel g labels] replaces node labels; [Array.length labels] must equal
    [n_nodes g]. *)

(** {1 Accessors} *)

val n_nodes : t -> int
val n_arcs : t -> int
val arcs : t -> (int * int) list
(** Arcs in lexicographic order. *)

val succ : t -> int -> int array
(** Children of a node, ascending. The returned array must not be mutated. *)

val pred : t -> int -> int array
(** Parents of a node, ascending. The returned array must not be mutated. *)

val succ_arrays : t -> int array array
(** The whole successor adjacency (index = node id, children ascending),
    shared with the dag — must not be mutated. For hot loops such as the
    {!Frontier} engine that cannot afford per-node accessor calls. *)

val pred_arrays : t -> int array array
(** Predecessor counterpart of {!succ_arrays}. Must not be mutated. *)

type csr = {
  off : int array;  (** length [n + 1]; children of [v] are [dat.(off.(v))
                        .. dat.(off.(v+1) - 1)], ascending *)
  dat : int array;
  indeg : int array;  (** in-degree per node *)
  n_sources : int;
}
(** Flattened (compressed sparse row) successor adjacency, for hot loops
    where the array-of-arrays layout is too cache-hostile. *)

val csr : t -> csr
(** Built lazily on first use and cached on the dag; the same value is
    shared by every caller and must not be mutated. *)

val out_degree : t -> int -> int
val in_degree : t -> int -> int
val has_arc : t -> int -> int -> bool

val label : t -> int -> string
(** Defaults to the decimal node id when no labels were supplied. *)

val has_labels : t -> bool
(** Were explicit labels supplied at construction? *)

val find_label : t -> string -> int option
(** First node carrying the given label, if any. *)

(** {1 Sources, sinks and structure} *)

val is_source : t -> int -> bool
(** Parentless. *)

val is_sink : t -> int -> bool
(** Childless. *)

val sources : t -> int list
val sinks : t -> int list
val nonsinks : t -> int list
val nonsources : t -> int list
val n_nonsinks : t -> int
val n_nonsources : t -> int

val topological_order : t -> int array
(** Some topological order of all nodes (sources first, Kahn's algorithm). *)

val is_connected : t -> bool
(** Connectivity of the underlying undirected graph. The empty dag ([n = 0])
    is connected; so is a single node. *)

val depth : t -> int array
(** [depth g].(v) = length of the longest arc-path from any source to [v]
    (sources have depth 0). *)

val height : t -> int array
(** [height g].(v) = length of the longest arc-path from [v] to any sink
    (sinks have height 0). *)

val longest_path : t -> int
(** Number of arcs on a longest path; 0 for an arcless dag. *)

(** {1 Transformation} *)

val map_nodes : t -> perm:int array -> t
(** [map_nodes g ~perm] renames node [v] to [perm.(v)]; [perm] must be a
    permutation of [0..n-1]. Labels follow their nodes. *)

val quotient : t -> cluster_of:int array -> n_clusters:int -> (t, string) result
(** [quotient g ~cluster_of ~n_clusters] contracts each cluster to a single
    node (cluster ids must cover [0 .. n_clusters-1]); arcs between distinct
    clusters are kept (deduplicated). Fails if the result has a cycle, i.e.
    if the clustering is not convex enough to stay acyclic. *)

val induced : t -> keep:bool array -> t * int array
(** [induced g ~keep] is the sub-dag induced by the kept nodes together with
    the map from old node ids to new ids (-1 for dropped nodes). *)

(** {1 Equality and output} *)

val equal : t -> t -> bool
(** Structural equality on the same node numbering (labels ignored). *)

val pp : Format.formatter -> t -> unit
val to_dot : t -> string
(** GraphViz rendering, for debugging and the CLI. *)
