let random_dag rng ~n ~arc_probability =
  let arcs = ref [] in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      if Random.State.float rng 1.0 < arc_probability then arcs := (u, v) :: !arcs
    done
  done;
  Dag.make_exn ~n ~arcs:!arcs ()

let random_layered_dag rng ~layers ~width ~arc_probability =
  let n = layers * width in
  let node l i = (l * width) + i in
  let arcs = ref [] in
  for l = 0 to layers - 2 do
    for j = 0 to width - 1 do
      let parents = ref 0 in
      for i = 0 to width - 1 do
        if Random.State.float rng 1.0 < arc_probability then begin
          arcs := (node l i, node (l + 1) j) :: !arcs;
          incr parents
        end
      done;
      if !parents = 0 then
        (* guarantee a parent so the dag stays levelled *)
        arcs := (node l (Random.State.int rng width), node (l + 1) j) :: !arcs
    done
  done;
  Dag.make_exn ~n ~arcs:!arcs ()

let greedy_random rng g ~pick_pool =
  let n = Dag.n_nodes g in
  let fr = Frontier.create g in
  let order = Array.make n (-1) in
  for t = 0 to n - 1 do
    let pool = pick_pool (Frontier.to_list fr) in
    let k = Random.State.int rng (List.length pool) in
    let v = List.nth pool k in
    order.(t) <- v;
    Frontier.execute fr v
  done;
  Schedule.of_array_exn g order

let random_schedule rng g = greedy_random rng g ~pick_pool:Fun.id

let random_nonsinks_first_schedule rng g =
  let pick_pool eligible =
    match List.filter (fun v -> not (Dag.is_sink g v)) eligible with
    | [] -> eligible
    | nonsinks -> nonsinks
  in
  greedy_random rng g ~pick_pool
