let random_dag rng ~n ~arc_probability =
  let b = Dag.Builder.create ~n () in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      if Random.State.float rng 1.0 < arc_probability then Dag.Builder.add_arc b u v
    done
  done;
  Dag.Builder.build_exn b

let random_layered_dag rng ~layers ~width ~arc_probability =
  let n = layers * width in
  let node l i = (l * width) + i in
  let b = Dag.Builder.create ~n () in
  for l = 0 to layers - 2 do
    for j = 0 to width - 1 do
      let parents = ref 0 in
      for i = 0 to width - 1 do
        if Random.State.float rng 1.0 < arc_probability then begin
          Dag.Builder.add_arc b (node l i) (node (l + 1) j);
          incr parents
        end
      done;
      if !parents = 0 then
        (* guarantee a parent so the dag stays levelled *)
        Dag.Builder.add_arc b (node l (Random.State.int rng width)) (node (l + 1) j)
    done
  done;
  Dag.Builder.build_exn b

let greedy_random rng g ~pick_pool =
  let n = Dag.n_nodes g in
  let fr = Frontier.create g in
  let order = Array.make n (-1) in
  for t = 0 to n - 1 do
    let pool = pick_pool (Frontier.to_list fr) in
    let k = Random.State.int rng (List.length pool) in
    let v = List.nth pool k in
    order.(t) <- v;
    Frontier.execute fr v
  done;
  Schedule.of_array_exn g order

let random_schedule rng g = greedy_random rng g ~pick_pool:Fun.id

let random_nonsinks_first_schedule rng g =
  let pick_pool eligible =
    match List.filter (fun v -> not (Dag.is_sink g v)) eligible with
    | [] -> eligible
    | nonsinks -> nonsinks
  in
  greedy_random rng g ~pick_pool
