(* Signature refinement: iterate (indegree, outdegree, depth, height, sorted
   multiset of neighbour signatures) a few rounds, then backtrack over
   signature-compatible candidates in topological order of g1. *)

let signatures g =
  let n = Dag.n_nodes g in
  let depth = Dag.depth g and height = Dag.height g in
  let sig_ = Array.init n (fun v ->
      Hashtbl.hash (Dag.in_degree g v, Dag.out_degree g v, depth.(v), height.(v)))
  in
  let refine () =
    let fresh =
      Array.init n (fun v ->
          let around =
            List.sort compare
              (Dag.fold_succ g v [] (fun acc w -> sig_.(w) :: acc))
          in
          let above =
            List.sort compare
              (Dag.fold_pred g v [] (fun acc w -> sig_.(w) :: acc))
          in
          Hashtbl.hash (sig_.(v), around, above))
    in
    Array.blit fresh 0 sig_ 0 n
  in
  refine ();
  refine ();
  sig_

let find_isomorphism g1 g2 =
  let n = Dag.n_nodes g1 in
  if n <> Dag.n_nodes g2 || Dag.n_arcs g1 <> Dag.n_arcs g2 then None
  else begin
    let s1 = signatures g1 and s2 = signatures g2 in
    let sorted a = List.sort compare (Array.to_list a) in
    if sorted s1 <> sorted s2 then None
    else begin
      let order = Dag.topological_order g1 in
      let phi = Array.make n (-1) in
      let used = Array.make n false in
      let ok_assignment u v =
        s1.(u) = s2.(v)
        && Dag.in_degree g1 u = Dag.in_degree g2 v
        && Dag.out_degree g1 u = Dag.out_degree g2 v
        (* all already-mapped parents of u must map to parents of v; since we
           assign in topological order, every parent of u is mapped *)
        && Dag.fold_pred g1 u true (fun acc p -> acc && Dag.has_arc g2 phi.(p) v)
      in
      let rec go i =
        if i >= n then true
        else
          let u = order.(i) in
          let rec try_v v =
            if v >= n then false
            else if (not used.(v)) && ok_assignment u v then begin
              phi.(u) <- v;
              used.(v) <- true;
              if go (i + 1) then true
              else begin
                phi.(u) <- -1;
                used.(v) <- false;
                try_v (v + 1)
              end
            end
            else try_v (v + 1)
          in
          try_v 0
      in
      if go 0 then Some phi else None
    end
  end

let isomorphic g1 g2 = Option.is_some (find_isomorphism g1 g2)
