module A1 = Bigarray.Array1

type t = (int32, Bigarray.int32_elt, Bigarray.c_layout) A1.t

(* Every accessor annotates its slab argument: with the kind and layout
   statically known the compiler emits direct unboxed loads/stores; left
   polymorphic they would fall back to the generic (C-call, boxing)
   bigarray path. *)

let max_value = Int32.to_int Int32.max_int

let create len : t =
  let s = A1.create Bigarray.int32 Bigarray.c_layout len in
  A1.fill s 0l;
  s

let length (s : t) = A1.dim s
let get (s : t) i = Int32.to_int (A1.get s i) [@@inline]
let set (s : t) i v = A1.set s i (Int32.of_int v) [@@inline]
let unsafe_get (s : t) i = Int32.to_int (A1.unsafe_get s i) [@@inline]
let unsafe_set (s : t) i v = A1.unsafe_set s i (Int32.of_int v) [@@inline]
let fill (s : t) v = A1.fill s (Int32.of_int v)
let blit (src : t) (dst : t) = A1.blit src dst
let sub (s : t) pos len : t = A1.sub s pos len

let copy (s : t) : t =
  let out = A1.create Bigarray.int32 Bigarray.c_layout (A1.dim s) in
  A1.blit s out;
  out

let of_int_array a : t =
  let s = A1.create Bigarray.int32 Bigarray.c_layout (Array.length a) in
  Array.iteri (fun i v -> A1.unsafe_set s i (Int32.of_int v)) a;
  s

let to_int_array ?(pos = 0) ?len (s : t) =
  let len = match len with Some l -> l | None -> A1.dim s - pos in
  Array.init len (fun i -> Int32.to_int (A1.get s (pos + i)))

let equal (s1 : t) (s2 : t) =
  A1.dim s1 = A1.dim s2
  &&
  let n = A1.dim s1 in
  let rec go i = i >= n || (A1.unsafe_get s1 i = A1.unsafe_get s2 i && go (i + 1)) in
  go 0

(* In-place range sort with no allocation: insertion sort for short runs
   (CSR rows are almost always short — a mesh row holds two entries),
   heapsort for the occasional high-degree node. *)
let sort_range (s : t) ~lo ~hi =
  let len = hi - lo in
  if len > 1 then
    if len <= 24 then
      for i = lo + 1 to hi - 1 do
        let x = A1.unsafe_get s i in
        let j = ref (i - 1) in
        while !j >= lo && A1.unsafe_get s !j > x do
          A1.unsafe_set s (!j + 1) (A1.unsafe_get s !j);
          decr j
        done;
        A1.unsafe_set s (!j + 1) x
      done
    else begin
      (* heapsort over s.[lo .. hi-1], heap indices 0-based at lo *)
      let swap i j =
        let x = A1.unsafe_get s (lo + i) in
        A1.unsafe_set s (lo + i) (A1.unsafe_get s (lo + j));
        A1.unsafe_set s (lo + j) x
      in
      let sift_down root limit =
        let i = ref root in
        let continue = ref true in
        while !continue do
          let l = (2 * !i) + 1 in
          if l >= limit then continue := false
          else begin
            let child =
              if l + 1 < limit
                 && A1.unsafe_get s (lo + l + 1) > A1.unsafe_get s (lo + l)
              then l + 1
              else l
            in
            if A1.unsafe_get s (lo + child) > A1.unsafe_get s (lo + !i) then begin
              swap child !i;
              i := child
            end
            else continue := false
          end
        done
      in
      for root = (len / 2) - 1 downto 0 do
        sift_down root len
      done;
      for last = len - 1 downto 1 do
        swap 0 last;
        sift_down 0 last
      done
    end
