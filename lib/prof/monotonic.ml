(* The span clock. OCaml's stdlib exposes no monotonic wall clock
   ([Sys.time] is CPU time with clock-tick granularity), so this is a shim
   over [Unix.gettimeofday]: microsecond-ish resolution, wall-clock
   semantics, and — on the machines we bench on — close enough to monotone
   that span totals are trustworthy. Swap the implementation here (e.g. for
   [Mtime_clock.now_ns] or [clock_gettime(CLOCK_MONOTONIC)] bindings) and
   every span in the tree follows. *)

let now : unit -> float = Unix.gettimeofday
