(** Rendering of {!Span.capture} trees. All outputs are deterministic for
    a given tree: children are emitted in name order at every level. *)

val self_s : Span.info -> float
(** Wall-clock seconds spent in the span itself: total minus the totals of
    its children, clamped at zero (clock skew between nested samples can
    make the raw difference marginally negative). *)

val alloc_words : Span.info -> float
(** Minor plus direct-major words allocated, children included. *)

val self_alloc_words : Span.info -> float

val to_text : Span.info list -> string
(** Fixed-width table, one row per span, indentation showing nesting:
    count, total ms, self ms, allocated MB. *)

val to_json : Span.info list -> string
(** Nested JSON array: [{"name", "count", "total_ms", "self_ms",
    "minor_words", "major_words", "children": [...]}]. Parses with
    {!Ic_obs.Json.parse}. *)

val to_collapsed : Span.info list -> string
(** Collapsed ("folded") stacks, one line per span node:
    ["root;child;leaf <self-microseconds>"]. Loadable by Brendan Gregg's
    [flamegraph.pl] and by speedscope. Spans with zero self time are
    elided; semicolons and spaces in names are replaced by underscores. *)
