(* Statistical perf-regression gate.

   Bench records are objects with a "bench" name and numeric metric
   fields (time_ms, allocated_mb, ...). A run repeats each bench k times
   and emits k records per name; [fold_min] keeps the per-metric minimum
   across repetitions — min-of-k is the standard robust estimator for
   wall-clock benchmarks, since noise (scheduler preemption, cache
   pollution) only ever adds time.

   [compare_runs] then checks each (bench, metric) pair present in both
   runs against a relative threshold: current > baseline * (1 + tau) is
   a regression. Metrics without a configured threshold are reported but
   never gate. *)

module Json = Ic_obs.Json

type record = { bench : string; metrics : (string * float) list }

type comparison = {
  cmp_bench : string;
  metric : string;
  base : float;
  cur : float;
  ratio : float;  (* cur /. base, or nan when base <= 0 *)
  threshold : float option;
  regressed : bool;
}

let default_thresholds = [ ("time_ms", 0.25); ("allocated_mb", 0.5) ]

let record_of_json v =
  match Json.member "bench" v with
  | Some (Json.String bench) ->
    let metrics =
      match v with
      | Json.Object fields ->
        List.filter_map
          (fun (k, v) ->
            match v with Json.Number f -> Some (k, f) | _ -> None)
          fields
      | _ -> []
    in
    Some { bench; metrics }
  | _ -> None

let records_of_json v =
  List.filter_map record_of_json (Json.to_list v)

(* Accepts both the current format (a JSON array of records) and the
   legacy NDJSON one object per line, so old baseline files keep
   loading. *)
let load_string s =
  match Json.parse s with
  | Ok v -> Ok (records_of_json v)
  | Error _ ->
    let lines = String.split_on_char '\n' s in
    let rec go acc = function
      | [] -> Ok (List.rev acc)
      | line :: rest ->
        if String.trim line = "" then go acc rest
        else (
          match Json.parse line with
          | Ok v -> (
            match record_of_json v with
            | Some r -> go (r :: acc) rest
            | None -> go acc rest)
          | Error e -> Error (Printf.sprintf "bad record line %S: %s" line e))
    in
    go [] lines

let load_file path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | s -> load_string s
  | exception Sys_error e -> Error e

(* min-of-k: collapse repeated records for the same bench name, keeping
   the per-metric minimum; first-seen order of names is preserved *)
let fold_min records =
  let order = ref [] in
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun r ->
      match Hashtbl.find_opt tbl r.bench with
      | None ->
        order := r.bench :: !order;
        Hashtbl.replace tbl r.bench r.metrics
      | Some prev ->
        let merged =
          List.map
            (fun (k, v) ->
              match List.assoc_opt k r.metrics with
              | Some v' -> (k, Float.min v v')
              | None -> (k, v))
            prev
        in
        (* metrics present only in the later repetition are appended *)
        let extra =
          List.filter (fun (k, _) -> not (List.mem_assoc k merged)) r.metrics
        in
        Hashtbl.replace tbl r.bench (merged @ extra))
    records;
  List.rev_map (fun b -> { bench = b; metrics = Hashtbl.find tbl b }) !order

let compare_runs ?(thresholds = default_thresholds) ~baseline ~current () =
  let baseline = fold_min baseline and current = fold_min current in
  List.concat_map
    (fun b ->
      match List.find_opt (fun c -> c.bench = b.bench) current with
      | None -> []
      | Some c ->
        List.filter_map
          (fun (metric, base) ->
            match List.assoc_opt metric c.metrics with
            | None -> None
            | Some cur ->
              let threshold = List.assoc_opt metric thresholds in
              let ratio = if base > 0.0 then cur /. base else Float.nan in
              let regressed =
                match threshold with
                | Some tau -> base > 0.0 && cur > base *. (1.0 +. tau)
                | None -> false
              in
              Some
                { cmp_bench = b.bench; metric; base; cur; ratio; threshold;
                  regressed })
          b.metrics)
    baseline

let regressed comparisons = List.exists (fun c -> c.regressed) comparisons

let pp_comparisons out comparisons =
  Printf.fprintf out "%-32s %-14s %12s %12s %8s  %s\n" "bench" "metric"
    "baseline" "current" "ratio" "verdict";
  List.iter
    (fun c ->
      let verdict =
        if c.regressed then "REGRESSED"
        else
          match c.threshold with
          | Some _ when c.base > 0.0 && c.ratio < 0.9 -> "improved"
          | Some _ -> "ok"
          | None -> "-"
      in
      Printf.fprintf out "%-32s %-14s %12.3f %12.3f %8.3f  %s\n" c.cmp_bench
        c.metric c.base c.cur c.ratio verdict)
    comparisons
