val now : unit -> float
(** Current time in seconds, for span durations. A shim over
    [Unix.gettimeofday] until a true monotonic source is bound; see the
    implementation for the swap point. *)
