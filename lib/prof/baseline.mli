(** Statistical comparator over bench records — the perf-regression gate.

    A bench run emits one JSON object per (bench, repetition) with a
    ["bench"] name and numeric metric fields. Repetitions are folded with
    a per-metric minimum (min-of-k: noise only adds time), then each
    (bench, metric) present in both runs is compared against a relative
    threshold. CI commits a baseline file and fails the build when any
    gated metric regresses past its threshold. *)

type record = { bench : string; metrics : (string * float) list }

type comparison = {
  cmp_bench : string;
  metric : string;
  base : float;
  cur : float;
  ratio : float;  (** [cur /. base]; [nan] when [base <= 0] *)
  threshold : float option;  (** [None] = informational, never gates *)
  regressed : bool;
}

val default_thresholds : (string * float) list
(** [[("time_ms", 0.25); ("allocated_mb", 0.5)]] — a metric regresses when
    [cur > base * (1 + threshold)]. *)

val records_of_json : Ic_obs.Json.value -> record list
(** Records from a parsed JSON array; elements without a ["bench"] string
    field are skipped. *)

val load_string : string -> (record list, string) result
(** Parse a whole document as a JSON array, falling back to legacy NDJSON
    (one object per line) when the document as a whole doesn't parse. *)

val load_file : string -> (record list, string) result

val fold_min : record list -> record list
(** Collapse repeated records per bench name to the per-metric minimum,
    preserving first-seen name order. *)

val compare_runs :
  ?thresholds:(string * float) list ->
  baseline:record list ->
  current:record list ->
  unit ->
  comparison list
(** Fold both runs with {!fold_min}, then compare every (bench, metric)
    pair present in both. Order follows the baseline. *)

val regressed : comparison list -> bool

val pp_comparisons : out_channel -> comparison list -> unit
(** Fixed-width verdict table (ok / improved / REGRESSED / -). *)
