(* Rendering of captured span trees: a fixed-width text table, a nested
   JSON dump, and collapsed stacks for flamegraph.pl / speedscope. All
   three are deterministic for a given tree (children are sorted by name
   in [Span.capture]). *)

module Json = Ic_obs.Json

let self_s (i : Span.info) =
  let child =
    List.fold_left (fun acc c -> acc +. c.Span.total_s) 0.0 i.Span.info_children
  in
  Float.max 0.0 (i.Span.total_s -. child)

let alloc_words (i : Span.info) = i.Span.minor_words +. i.Span.major_words

let self_alloc_words (i : Span.info) =
  let child =
    List.fold_left (fun acc c -> acc +. alloc_words c) 0.0 i.Span.info_children
  in
  Float.max 0.0 (alloc_words i -. child)

let words_to_mb w = w *. 8.0 /. 1048576.0

let to_text infos =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "%-44s %10s %12s %12s %10s\n" "span" "count" "total(ms)"
       "self(ms)" "alloc(MB)");
  let rec go depth (i : Span.info) =
    let name =
      let indent = String.make (2 * depth) ' ' in
      let s = indent ^ i.Span.info_name in
      if String.length s > 44 then String.sub s 0 44 else s
    in
    Buffer.add_string buf
      (Printf.sprintf "%-44s %10d %12.3f %12.3f %10.3f\n" name
         i.Span.info_count
         (1e3 *. i.Span.total_s)
         (1e3 *. self_s i)
         (words_to_mb (alloc_words i)));
    List.iter (go (depth + 1)) i.Span.info_children
  in
  List.iter (go 0) infos;
  Buffer.contents buf

let to_json infos =
  let buf = Buffer.create 1024 in
  let rec go (i : Span.info) =
    Buffer.add_string buf
      (Printf.sprintf
         "{\"name\": %s, \"count\": %d, \"total_ms\": %.6f, \"self_ms\": \
          %.6f, \"minor_words\": %.0f, \"major_words\": %.0f, \"children\": ["
         (Json.quote i.Span.info_name)
         i.Span.info_count
         (1e3 *. i.Span.total_s)
         (1e3 *. self_s i) i.Span.minor_words i.Span.major_words);
    List.iteri
      (fun k c ->
        if k > 0 then Buffer.add_string buf ", ";
        go c)
      i.Span.info_children;
    Buffer.add_string buf "]}"
  in
  Buffer.add_char buf '[';
  List.iteri
    (fun k i ->
      if k > 0 then Buffer.add_string buf ", ";
      go i)
    infos;
  Buffer.add_string buf "]\n";
  Buffer.contents buf

(* collapsed-stack frames: flamegraph.pl splits each line at the last
   space and on semicolons, so both are scrubbed from frame names *)
let frame name =
  String.map (function ';' | ' ' -> '_' | c -> c) name

let to_collapsed infos =
  let buf = Buffer.create 1024 in
  let rec go prefix (i : Span.info) =
    let stack =
      if prefix = "" then frame i.Span.info_name
      else prefix ^ ";" ^ frame i.Span.info_name
    in
    let self_us = int_of_float ((1e6 *. self_s i) +. 0.5) in
    if self_us > 0 then
      Buffer.add_string buf (Printf.sprintf "%s %d\n" stack self_us);
    List.iter (go stack) i.Span.info_children
  in
  List.iter (go "") infos;
  Buffer.contents buf
