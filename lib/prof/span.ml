(* Wall-clock self-profiling spans.

   The span tree is global mutable state: a [node] per distinct call path
   (root -> ... -> name), found or created on [enter] and aggregated in
   place on [leave]. Recursion never re-enters an open node — a recursive
   [enter "f"] inside the span "f" creates (or reuses) a child named "f"
   under it, so every open node has exactly one live (t0, gc0) sample and
   totals need no re-entrancy bookkeeping.

   The disabled path is one load-and-branch on [on] per call, with no
   allocation: call sites pass static strings, and nothing else runs. The
   enabled path pays one [Monotonic.now] and one [Gc.quick_stat] per
   [enter] and per [leave]; [Gc.quick_stat] itself allocates its result
   record (a few dozen words), which is visible as a small per-span floor
   in the allocation deltas of enclosing spans — an observer effect to keep
   in mind when reading words-allocated numbers of nanosecond-scale spans.
   Counts are always exact. *)

type node = {
  name : string;
  parent : node option;
  mutable count : int;
  mutable total : float;  (* seconds, children included *)
  mutable minor : float;  (* minor-heap words allocated, children included *)
  mutable major : float;  (* direct major-heap words (promotions excluded) *)
  mutable t0 : float;  (* live samples while the span is open *)
  mutable minor0 : float;
  mutable major0 : float;
  children : (string, node) Hashtbl.t;
}

let make_node name parent =
  {
    name;
    parent;
    count = 0;
    total = 0.0;
    minor = 0.0;
    major = 0.0;
    t0 = 0.0;
    minor0 = 0.0;
    major0 = 0.0;
    children = Hashtbl.create 4;
  }

let on = ref false
let root = make_node "" None
let current = ref root

let enabled () = !on
let enable () = on := true

(* disabling with spans still open re-points [current] at the root so a
   later [enable] starts from a sane position; the orphaned open spans
   simply never accumulate their last interval *)
let disable () =
  on := false;
  current := root

let reset () =
  Hashtbl.reset root.children;
  current := root

let enter name =
  if !on then begin
    let parent = !current in
    let child =
      match Hashtbl.find_opt parent.children name with
      | Some c -> c
      | None ->
        let c = make_node name (Some parent) in
        Hashtbl.add parent.children name c;
        c
    in
    child.count <- child.count + 1;
    let st = Gc.quick_stat () in
    child.minor0 <- st.Gc.minor_words;
    child.major0 <- st.Gc.major_words -. st.Gc.promoted_words;
    child.t0 <- Monotonic.now ();
    current := child
  end

let leave () =
  if !on then begin
    let cur = !current in
    match cur.parent with
    | None -> () (* unbalanced leave at the root: ignore *)
    | Some p ->
      let t1 = Monotonic.now () in
      let st = Gc.quick_stat () in
      cur.total <- cur.total +. (t1 -. cur.t0);
      cur.minor <- cur.minor +. (st.Gc.minor_words -. cur.minor0);
      cur.major <-
        cur.major +. (st.Gc.major_words -. st.Gc.promoted_words -. cur.major0);
      current := p
  end

let time name f =
  if !on then begin
    enter name;
    match f () with
    | v ->
      leave ();
      v
    | exception e ->
      leave ();
      raise e
  end
  else f ()

type info = {
  info_name : string;
  info_count : int;
  total_s : float;
  minor_words : float;
  major_words : float;
  info_children : info list;
}

let rec info_of node =
  let children =
    Hashtbl.fold (fun _ c acc -> info_of c :: acc) node.children []
    |> List.sort (fun a b -> compare a.info_name b.info_name)
  in
  {
    info_name = node.name;
    info_count = node.count;
    total_s = node.total;
    minor_words = node.minor;
    major_words = node.major;
    info_children = children;
  }

let capture () = (info_of root).info_children
