(** Nestable wall-clock self-profiling spans over named regions.

    The scheduler's hot paths ([Dag.Builder.build], [Frontier.execute],
    the [Optimal] search, [Simulator.run]'s event handlers, …) are wrapped
    in [enter]/[leave] pairs keyed by static region names. While profiling
    is {!enable}d, each pair accumulates wall-clock time
    ({!Monotonic.now}), GC allocation deltas ([Gc.quick_stat] minor and
    major words) and a call count into a global span tree shaped by the
    dynamic nesting — the input to {!Report}.

    Disabled (the default), every call is a single branch on one global
    flag with no allocation, so instrumented code is indistinguishable
    from un-instrumented code within measurement noise (the perf JSON's
    ["prof" phase] measures exactly this; see DESIGN.md).

    The tree is global mutable state for a single-threaded process. Toggle
    {!enable}/{!disable} outside any open span; a span left open when
    profiling is disabled simply never accumulates its last interval. *)

val enabled : unit -> bool
val enable : unit -> unit

val disable : unit -> unit
(** Also re-points the current position at the root, so a later {!enable}
    starts from a sane state even if spans were open. *)

val reset : unit -> unit
(** Drop the whole accumulated tree. *)

(** {1 Recording} *)

val enter : string -> unit
(** Open a span named [name] nested under the innermost open span.
    Recursive re-entry nests (a span "f" inside "f" is a child named "f"),
    so flamegraphs show recursion depth. Call sites should pass static
    strings: building a name allocates even when profiling is off. *)

val leave : unit -> unit
(** Close the innermost open span, accumulating elapsed wall time and
    allocation into its node. Unbalanced calls at the root are ignored.
    An exception escaping between [enter] and [leave] leaves the span
    open — use {!time} where that matters. *)

val time : string -> (unit -> 'a) -> 'a
(** [time name f] is [f ()] inside an exception-safe [enter]/[leave] pair.
    The closure makes this unsuitable for allocation-free hot paths; use
    it for coarse, cold spans. *)

(** {1 Inspection} *)

type info = {
  info_name : string;
  info_count : int;
  total_s : float;  (** wall-clock seconds, children included *)
  minor_words : float;  (** minor-heap words allocated, children included *)
  major_words : float;  (** direct major-heap words, promotions excluded *)
  info_children : info list;  (** sorted by name *)
}
(** An immutable snapshot of one span node. *)

val capture : unit -> info list
(** Snapshot the top-level spans (deterministically sorted by name at
    every level). Spans still open contribute their closed intervals
    only. *)
