(** The flight recorder: a fixed-size memory-mapped ring of recent
    trace events that survives [kill -9].

    A recorder is a file of [slots] fixed-width binary frames, mapped
    into the process with [Unix.map_file]. Recording an event writes
    one frame in place — sequence number, timestamp, payload, and a
    CRC32 over the frame body (the same polynomial and little-endian
    framing as the serving journal) — and nothing else: no syscall, no
    allocation, no flush. Because the mapping is shared, the kernel
    owns the dirty pages; when the process is killed, whatever frames
    were written are still in the page cache and reach the file without
    the process's help. Recovery trusts no cursor: {!load} scans every
    slot, keeps the frames whose CRC verifies (a frame torn mid-write
    fails its CRC and is dropped), and orders them by sequence number —
    the last [slots] events before the crash, minus at most the one
    being written.

    Reopening an existing recorder file (same geometry) continues the
    sequence numbering after the highest recovered frame, so a
    [--recover]ed server appends to the same black box it crashed
    with. *)

type t

val default_slots : int
(** 4096 — at 40 bytes per frame, a 160 KiB file. *)

val create : ?slots:int -> string -> (t, string) result
(** [create path] opens (or creates) the recorder at [path] with
    [slots] frames (default {!default_slots}, min 16). An existing file
    with matching magic and geometry is reopened in place — valid
    frames are preserved and numbering continues after them; anything
    else (fresh file, wrong geometry, foreign content) is re-initialized
    to an empty ring. *)

val record : t -> Trace.kind -> time:float -> a:int -> b:int -> unit
(** Overwrite the next slot with this event. Single-writer: the
    recorder is owned by one domain (the serving loop). *)

val next_seq : t -> int
(** The sequence number the next {!record} will use (first is 1). *)

val slots : t -> int

val close : t -> unit
(** Drop the mapping reference. The ring remains recoverable — closing
    is not what persists it; the kernel is. *)

(** {1 Recovery} *)

type event = { seq : int; time : float; kind : Trace.kind; a : int; b : int }

type dump = {
  d_slots : int;  (** ring geometry of the file *)
  d_valid : int;  (** frames whose CRC verified *)
  events : event array;  (** valid frames, ascending sequence order *)
}

val load : string -> (dump, string) result
(** Read and verify a recorder file without mapping it. *)

val to_trace : dump -> Trace.t
(** The recovered events replayed into a fresh {!Trace.t} (in sequence
    order), ready for {!Exporter.chrome_trace}. *)
