type value =
  | Null
  | Bool of bool
  | Number of float
  | String of string
  | Array of value list
  | Object of (string * value) list

exception Fail of int * string

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Fail (!pos, msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %C" c)
  in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let literal word v =
    String.iter expect word;
    v
  in
  let utf8_encode buf code =
    (* code points from \uXXXX (no surrogate pairing beyond the BMP) *)
    if code < 0x80 then Buffer.add_char buf (Char.chr code)
    else if code < 0x800 then begin
      Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
    end
    else begin
      Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
    end
  in
  let string_body () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
        advance ();
        match peek () with
        | None -> fail "unterminated escape"
        | Some c ->
          advance ();
          (match c with
          | '"' -> Buffer.add_char buf '"'
          | '\\' -> Buffer.add_char buf '\\'
          | '/' -> Buffer.add_char buf '/'
          | 'b' -> Buffer.add_char buf '\b'
          | 'f' -> Buffer.add_char buf '\012'
          | 'n' -> Buffer.add_char buf '\n'
          | 'r' -> Buffer.add_char buf '\r'
          | 't' -> Buffer.add_char buf '\t'
          | 'u' ->
            if !pos + 4 > n then fail "truncated \\u escape";
            let hex = String.sub s !pos 4 in
            (match int_of_string_opt ("0x" ^ hex) with
            | None -> fail "bad \\u escape"
            | Some code ->
              pos := !pos + 4;
              utf8_encode buf code)
          | _ -> fail "unknown escape");
          go ())
      | Some c ->
        advance ();
        Buffer.add_char buf c;
        go ()
    in
    go ();
    Buffer.contents buf
  in
  let number () =
    let start = !pos in
    let numeral = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c -> numeral c | None -> false) do
      advance ()
    done;
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> Number f
    | None -> fail "bad number"
  in
  let rec value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Object []
      end
      else begin
        let fields = ref [] in
        let rec fields_go () =
          skip_ws ();
          let key = string_body () in
          skip_ws ();
          expect ':';
          let v = value () in
          fields := (key, v) :: !fields;
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            fields_go ()
          | Some '}' -> advance ()
          | _ -> fail "expected ',' or '}'"
        in
        fields_go ();
        Object (List.rev !fields)
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        Array []
      end
      else begin
        let items = ref [] in
        let rec items_go () =
          let v = value () in
          items := v :: !items;
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            items_go ()
          | Some ']' -> advance ()
          | _ -> fail "expected ',' or ']'"
        in
        items_go ();
        Array (List.rev !items)
      end
    | Some '"' -> String (string_body ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> number ()
  in
  match
    let v = value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Fail (at, msg) ->
    Error (Printf.sprintf "JSON error at offset %d: %s" at msg)

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let quote s = "\"" ^ escape s ^ "\""

let member key = function
  | Object fields -> List.assoc_opt key fields
  | _ -> None

let to_list = function Array items -> items | _ -> []
let to_string = function String s -> Some s | _ -> None
let to_number = function Number f -> Some f | _ -> None
