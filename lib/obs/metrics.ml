type counter = { c_name : string; mutable c_value : int }
type gauge = { g_name : string; mutable g_value : float }

type histogram = {
  h_name : string;
  bounds : float array;  (* strictly increasing, finite *)
  counts : int array;  (* length bounds + 1; last is the overflow bucket *)
  mutable h_sum : float;
  mutable h_count : int;
}

type instrument =
  | Counter of counter
  | Gauge of gauge
  | Histogram of histogram

type t = { instruments : (string, instrument) Hashtbl.t }

let create () = { instruments = Hashtbl.create 16 }

let register t name make describe =
  match Hashtbl.find_opt t.instruments name with
  | None ->
    let i = make () in
    Hashtbl.add t.instruments name i;
    i
  | Some i -> describe i

let wrong_type name = invalid_arg ("Metrics: " ^ name ^ " registered as another instrument type")

let counter t name =
  match
    register t name
      (fun () -> Counter { c_name = name; c_value = 0 })
      (function Counter _ as i -> i | _ -> wrong_type name)
  with
  | Counter c -> c
  | _ -> assert false

let gauge t name =
  match
    register t name
      (fun () -> Gauge { g_name = name; g_value = 0.0 })
      (function Gauge _ as i -> i | _ -> wrong_type name)
  with
  | Gauge g -> g
  | _ -> assert false

let histogram t name ~buckets =
  let ok = ref (Array.length buckets > 0) in
  Array.iteri
    (fun i b ->
      if not (Float.is_finite b) then ok := false
      else if i > 0 && b <= buckets.(i - 1) then ok := false)
    buckets;
  if not !ok then
    invalid_arg "Metrics.histogram: buckets must be finite and strictly increasing";
  match
    register t name
      (fun () ->
        Histogram
          {
            h_name = name;
            bounds = Array.copy buckets;
            counts = Array.make (Array.length buckets + 1) 0;
            h_sum = 0.0;
            h_count = 0;
          })
      (function
        | Histogram h as i ->
          if h.bounds <> buckets then
            invalid_arg ("Metrics.histogram: " ^ name ^ " re-registered with different buckets");
          i
        | _ -> wrong_type name)
  with
  | Histogram h -> h
  | _ -> assert false

let incr ?(by = 1) c =
  if by < 0 then invalid_arg "Metrics.incr: negative increment";
  c.c_value <- c.c_value + by

let set g v = g.g_value <- v

let observe h x =
  let n = Array.length h.bounds in
  let i = ref 0 in
  while !i < n && x > Array.unsafe_get h.bounds !i do
    i := !i + 1
  done;
  h.counts.(!i) <- h.counts.(!i) + 1;
  h.h_sum <- h.h_sum +. x;
  h.h_count <- h.h_count + 1

let reset t =
  Hashtbl.iter
    (fun _ i ->
      match i with
      | Counter c -> c.c_value <- 0
      | Gauge g -> g.g_value <- 0.0
      | Histogram h ->
        Array.fill h.counts 0 (Array.length h.counts) 0;
        h.h_sum <- 0.0;
        h.h_count <- 0)
    t.instruments

let counter_value c = c.c_value
let gauge_value g = g.g_value
let histogram_count h = h.h_count
let histogram_sum h = h.h_sum

let histogram_buckets h =
  Array.init
    (Array.length h.counts)
    (fun i ->
      ( (if i < Array.length h.bounds then h.bounds.(i) else infinity),
        h.counts.(i) ))

let sorted_instruments t =
  Hashtbl.fold (fun _ i acc -> i :: acc) t.instruments []
  |> List.sort (fun a b ->
         let name = function
           | Counter c -> c.c_name
           | Gauge g -> g.g_name
           | Histogram h -> h.h_name
         in
         compare (name a) (name b))

let pp_text ppf t =
  List.iter
    (function
      | Counter c -> Format.fprintf ppf "counter   %-32s %d@." c.c_name c.c_value
      | Gauge g -> Format.fprintf ppf "gauge     %-32s %g@." g.g_name g.g_value
      | Histogram h ->
        Format.fprintf ppf "histogram %-32s count %d  sum %g  mean %g@."
          h.h_name h.h_count h.h_sum
          (if h.h_count = 0 then 0.0 else h.h_sum /. float_of_int h.h_count);
        Array.iter
          (fun (bound, count) ->
            Format.fprintf ppf "    le %-10s %d@."
              (if Float.is_finite bound then Printf.sprintf "%g" bound
               else "+inf")
              count)
          (histogram_buckets h))
    (sorted_instruments t)

let json_float x =
  if Float.is_finite x then Printf.sprintf "%.12g" x else "null"

let to_json t =
  let buf = Buffer.create 512 in
  let instruments = sorted_instruments t in
  (* instrument names come from callers (family descriptions, user labels):
     escape them properly rather than trusting OCaml's %S, whose \ddd
     control-character escapes are not JSON *)
  let section name entries =
    Buffer.add_string buf (Printf.sprintf "%s: {" (Json.quote name));
    List.iteri
      (fun i (key, body) ->
        if i > 0 then Buffer.add_string buf ", ";
        Buffer.add_string buf (Printf.sprintf "%s: %s" (Json.quote key) body))
      entries;
    Buffer.add_char buf '}'
  in
  Buffer.add_char buf '{';
  section "counters"
    (List.filter_map
       (function Counter c -> Some (c.c_name, string_of_int c.c_value) | _ -> None)
       instruments);
  Buffer.add_string buf ", ";
  section "gauges"
    (List.filter_map
       (function Gauge g -> Some (g.g_name, json_float g.g_value) | _ -> None)
       instruments);
  Buffer.add_string buf ", ";
  section "histograms"
    (List.filter_map
       (function
         | Histogram h ->
           Some
             ( h.h_name,
               Printf.sprintf
                 "{\"buckets\": [%s], \"counts\": [%s], \"sum\": %s, \"count\": %d}"
                 (String.concat ", "
                    (Array.to_list (Array.map json_float h.bounds)))
                 (String.concat ", "
                    (Array.to_list (Array.map string_of_int h.counts)))
                 (json_float h.h_sum) h.h_count )
         | _ -> None)
       instruments);
  Buffer.add_char buf '}';
  Buffer.contents buf
