(* Domain-safe instruments. The design constraint is the write path: a
   counter increment from inside Ic_par's work loop or Ic_served's
   select loop must cost one atomic RMW on a cell nobody else writes,
   and an absent registry must cost one branch at the call site. The
   read side (scrape endpoint, top dashboard) merges whatever it finds;
   it runs a few times a second, so it can afford to sum cells and
   rebuild quantiles from buckets.

   Registration is guarded by a tiny spin lock rather than Mutex so the
   library keeps building on 4.14 without a threads dependency; it only
   protects the name table — instruments themselves are immutable
   records over Atomic cells. Counter cells are allocated with spacer
   arrays between them so consecutive cells land on different cache
   lines (minor-heap allocation is sequential and promotion preserves
   order). *)

type counter = {
  cells : int Atomic.t array;
  c_mask : int;
  (* spacers between the cells; kept reachable so the GC cannot
     collect them and later allocations cannot slide the cells onto a
     shared cache line *)
  _c_pads : int array array;
}

type gauge = float Atomic.t

(* two buckets per octave over 2^-20 .. 2^12: index 2*(e - lo_e) + (0 if
   mantissa < 0.75 else 1), saturating at both ends *)
let lo_e = -20
let n_buckets = 64

type histogram = {
  h_buckets : int Atomic.t array;
  h_count : int Atomic.t;
  (* fixed-point at nanosecond resolution: an atomic add instead of a
     CAS loop over boxed floats; saturates after ~292 host-years *)
  h_sum_ns : int Atomic.t;
}

type instrument = C of counter | G of gauge | H of histogram

type t = {
  n_shards : int;
  lock : bool Atomic.t;
  tbl : (string, instrument) Hashtbl.t;
  created_at : float;
}

let rec pow2_ge n k = if k >= n then k else pow2_ge n (2 * k)

let create ?(shards = 8) () =
  let shards = pow2_ge (max shards 1) 1 in
  {
    n_shards = shards;
    lock = Atomic.make false;
    tbl = Hashtbl.create 32;
    created_at = Unix.gettimeofday ();
  }

let shards t = t.n_shards

let with_lock t f =
  while not (Atomic.compare_and_set t.lock false true) do
    ()
  done;
  Fun.protect ~finally:(fun () -> Atomic.set t.lock false) f

let make_cells n =
  let pads = Array.make n [||] in
  let cells =
    Array.init n (fun i ->
        let c = Atomic.make 0 in
        (* 15 words of spacing: cell box (2 words) + pad (16 words
           with header) > one 64-byte line *)
        pads.(i) <- Array.make 15 0;
        c)
  in
  (cells, pads)

let register t name make_i describe ~kind =
  let i =
    with_lock t (fun () ->
        match Hashtbl.find_opt t.tbl name with
        | Some i -> i
        | None ->
          let i = make_i () in
          Hashtbl.replace t.tbl name i;
          i)
  in
  match describe i with
  | Some v -> v
  | None ->
    invalid_arg
      (Printf.sprintf "Live.%s: %s is registered as another instrument kind"
         kind name)

let counter t name =
  register t name ~kind:"counter"
    (fun () ->
      let cells, pads = make_cells t.n_shards in
      C { cells; c_mask = t.n_shards - 1; _c_pads = pads })
    (function C c -> Some c | _ -> None)

let gauge t name =
  register t name ~kind:"gauge"
    (fun () -> G (Atomic.make 0.0))
    (function G g -> Some g | _ -> None)

let histogram t name =
  register t name ~kind:"histogram"
    (fun () ->
      H
        {
          h_buckets = Array.init n_buckets (fun _ -> Atomic.make 0);
          h_count = Atomic.make 0;
          h_sum_ns = Atomic.make 0;
        })
    (function H h -> Some h | _ -> None)

(* ----------------------------------------------------------- hot path *)

let incr c ~shard n =
  ignore (Atomic.fetch_and_add c.cells.(shard land c.c_mask) n)

let set g v = Atomic.set g v

let bucket_of x =
  if not (Float.is_finite x) || x <= 0.0 then 0
  else begin
    let m, e = Float.frexp x in
    let i = (2 * (e - lo_e)) + if m < 0.75 then 0 else 1 in
    if i < 0 then 0 else if i >= n_buckets then n_buckets - 1 else i
  end

let observe h x =
  ignore (Atomic.fetch_and_add h.h_buckets.(bucket_of x) 1);
  ignore (Atomic.fetch_and_add h.h_count 1);
  if Float.is_finite x && x > 0.0 then begin
    let ns = int_of_float (x *. 1e9) in
    ignore (Atomic.fetch_and_add h.h_sum_ns ns)
  end

(* ------------------------------------------------------ merge-on-read *)

let counter_value c =
  let s = ref 0 in
  Array.iter (fun cell -> s := !s + Atomic.get cell) c.cells;
  !s

let gauge_value g = Atomic.get g

type hsnap = { counts : int array; sum : float; count : int }

let histogram_snapshot h =
  {
    counts = Array.init n_buckets (fun i -> Atomic.get h.h_buckets.(i));
    sum = float_of_int (Atomic.get h.h_sum_ns) /. 1e9;
    count = Atomic.get h.h_count;
  }

let hsnap_sub a b =
  {
    counts = Array.init n_buckets (fun i -> max 0 (a.counts.(i) - b.counts.(i)));
    sum = a.sum -. b.sum;
    count = max 0 (a.count - b.count);
  }

let bucket_upper i =
  let base = Float.ldexp 1.0 (lo_e + (i / 2)) in
  if i land 1 = 0 then 0.75 *. base else base

let bucket_lower i = if i = 0 then bucket_upper 0 /. 2.0 else bucket_upper (i - 1)

let quantile s q =
  if s.count <= 0 then nan
  else begin
    let target = Float.max 1.0 (q *. float_of_int s.count) in
    let res = ref nan in
    let cum = ref 0 in
    (try
       for i = 0 to n_buckets - 1 do
         cum := !cum + s.counts.(i);
         if float_of_int !cum >= target then begin
           res := sqrt (bucket_lower i *. bucket_upper i);
           raise Exit
         end
       done
     with Exit -> ());
    !res
  end

(* ---------------------------------------------------------- rendering *)

let sorted_instruments t =
  with_lock t (fun () -> Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.tbl [])
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let sanitize name =
  String.map
    (fun ch ->
      match ch with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> ch
      | _ -> '_')
    name

let fmt_float x =
  if Float.is_integer x && Float.abs x < 1e15 then
    Printf.sprintf "%.0f" x
  else Printf.sprintf "%.9g" x

let rss_bytes () =
  match open_in "/proc/self/status" with
  | exception Sys_error _ -> 0
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let rec scan () =
          match input_line ic with
          | exception End_of_file -> 0
          | line ->
            if String.length line >= 6 && String.sub line 0 6 = "VmRSS:" then begin
              let kb = ref 0 in
              String.iter
                (fun ch ->
                  if ch >= '0' && ch <= '9' then
                    kb := (!kb * 10) + (Char.code ch - Char.code '0'))
                line;
              !kb * 1024
            end
            else scan ()
        in
        scan ())

let add_histogram_exposition buf name h =
  let s = histogram_snapshot h in
  Buffer.add_string buf (Printf.sprintf "# TYPE %s histogram\n" name);
  let cum = ref 0 in
  for i = 0 to n_buckets - 1 do
    cum := !cum + s.counts.(i);
    (* cumulative semantics survive skipping empty buckets; render only
       the occupied ones plus +Inf to keep the exposition small *)
    if s.counts.(i) > 0 && i < n_buckets - 1 then
      Buffer.add_string buf
        (Printf.sprintf "%s_bucket{le=\"%s\"} %d\n" name
           (fmt_float (bucket_upper i))
           !cum)
  done;
  Buffer.add_string buf
    (Printf.sprintf "%s_bucket{le=\"+Inf\"} %d\n" name s.count);
  Buffer.add_string buf (Printf.sprintf "%s_sum %s\n" name (fmt_float s.sum));
  Buffer.add_string buf (Printf.sprintf "%s_count %d\n" name s.count)

let openmetrics ?(process = true) t =
  let buf = Buffer.create 2048 in
  List.iter
    (fun (name, i) ->
      let name = sanitize name in
      match i with
      | C c ->
        Buffer.add_string buf (Printf.sprintf "# TYPE %s counter\n" name);
        Buffer.add_string buf
          (Printf.sprintf "%s_total %d\n" name (counter_value c))
      | G g ->
        Buffer.add_string buf (Printf.sprintf "# TYPE %s gauge\n" name);
        Buffer.add_string buf
          (Printf.sprintf "%s %s\n" name (fmt_float (gauge_value g)))
      | H h -> add_histogram_exposition buf name h)
    (sorted_instruments t);
  if process then begin
    let gc = Gc.quick_stat () in
    Buffer.add_string buf "# TYPE process_resident_memory_bytes gauge\n";
    Buffer.add_string buf
      (Printf.sprintf "process_resident_memory_bytes %d\n" (rss_bytes ()));
    Buffer.add_string buf "# TYPE process_uptime_seconds gauge\n";
    Buffer.add_string buf
      (Printf.sprintf "process_uptime_seconds %s\n"
         (fmt_float (Unix.gettimeofday () -. t.created_at)));
    Buffer.add_string buf "# TYPE ocaml_gc_minor_collections counter\n";
    Buffer.add_string buf
      (Printf.sprintf "ocaml_gc_minor_collections_total %d\n" gc.Gc.minor_collections);
    Buffer.add_string buf "# TYPE ocaml_gc_major_collections counter\n";
    Buffer.add_string buf
      (Printf.sprintf "ocaml_gc_major_collections_total %d\n" gc.Gc.major_collections);
    Buffer.add_string buf "# TYPE ocaml_gc_heap_words gauge\n";
    Buffer.add_string buf
      (Printf.sprintf "ocaml_gc_heap_words %d\n" gc.Gc.heap_words)
  end;
  Buffer.add_string buf "# EOF\n";
  Buffer.contents buf

let to_json t =
  let instruments = sorted_instruments t in
  let buf = Buffer.create 2048 in
  let section tag filter render =
    Buffer.add_string buf (Printf.sprintf "%s: {" (Json.quote tag));
    let first = ref true in
    List.iter
      (fun (name, i) ->
        match filter i with
        | None -> ()
        | Some v ->
          if not !first then Buffer.add_string buf ", ";
          first := false;
          Buffer.add_string buf (Json.quote name);
          Buffer.add_string buf ": ";
          render v)
      instruments;
    Buffer.add_string buf "}"
  in
  Buffer.add_string buf "{";
  section "counters"
    (function C c -> Some (counter_value c) | _ -> None)
    (fun v -> Buffer.add_string buf (string_of_int v));
  Buffer.add_string buf ", ";
  section "gauges"
    (function G g -> Some (gauge_value g) | _ -> None)
    (fun v -> Buffer.add_string buf (fmt_float v));
  Buffer.add_string buf ", ";
  section "histograms"
    (function H h -> Some (histogram_snapshot h) | _ -> None)
    (fun s ->
      Buffer.add_string buf
        (Printf.sprintf "{\"count\": %d, \"sum\": %s, \"buckets\": [" s.count
           (fmt_float s.sum));
      let first = ref true in
      let cum = ref 0 in
      for i = 0 to n_buckets - 1 do
        cum := !cum + s.counts.(i);
        if s.counts.(i) > 0 then begin
          if not !first then Buffer.add_string buf ", ";
          first := false;
          Buffer.add_string buf
            (Printf.sprintf "[%s, %d]" (fmt_float (bucket_upper i)) !cum)
        end
      done;
      Buffer.add_string buf "]}");
  Buffer.add_string buf "}";
  Buffer.contents buf
