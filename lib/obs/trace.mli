(** Structured execution traces: a low-overhead flat event buffer.

    A trace is a growable record of timestamped scheduling events — task
    allocation/start/completion/failure, client stall/resume, frontier
    push/pop, eligibility-count changes — stored column-wise in flat
    int/float arrays, so recording an event allocates nothing (amortized:
    the columns double when full). Producers take a sink as an explicit
    [?sink:Trace.t] optional argument; when no sink is installed the
    instrumentation path is a single branch per site, which keeps the
    zero-observability cost within noise (the overhead contract of
    DESIGN.md §"The observability layer").

    Timestamps are {e simulated} time (or step indices for untimed
    producers like [Ic_compute.Engine]); a trace never consults the wall
    clock, so identically seeded runs produce byte-identical traces. *)

type kind =
  | Task_alloc  (** [a] = task, [b] = client; the server allocated [a] *)
  | Task_start
      (** [a] = task, [b] = client; computation begins (allocation time
          plus the input-transfer delay, when communication is priced) *)
  | Task_complete  (** [a] = task, [b] = client *)
  | Task_fail
      (** [a] = task, [b] = client; the allocation was lost (unreliable
          client) and the task returns to the pool *)
  | Client_stall  (** [a] = client; requested work, none was eligible *)
  | Client_resume  (** [a] = client; a stalled client received work *)
  | Frontier_push  (** [a] = node; the node became ELIGIBLE *)
  | Frontier_pop  (** [a] = node; the node was executed *)
  | Eligible_count  (** [a] = new number of allocatable eligible tasks *)
  | Timeout_fired
      (** [a] = task, [b] = client; the server's liveness timeout presumed
          the attempt lost and released the task for re-allocation *)
  | Retry_scheduled
      (** [a] = task, [b] = retry number (0 = first retry); the task will
          re-enter the pool after its backoff delay *)
  | Speculative_launch
      (** [a] = task; a speculative replica of a straggling task was
          released for allocation *)
  | Replica_cancelled
      (** [a] = task, [b] = client; a redundant attempt was discarded
          because another replica's result arrived first *)
  | Client_crash
      (** [a] = client, [b] = 0 for a permanent crash, 1 for a transient
          disconnect *)
  | Client_rejoin  (** [a] = client; a disconnected client came back *)
  | Frontier_depth
      (** [a] = shard, [b] = depth; the ready pool of shard [a] held
          [b] tasks after a server [handle] — the per-shard frontier
          signal the serving stack samples live *)
  | Inflight
      (** [a] = number of leased-and-unresolved tasks after a server
          [handle] *)

val kind_name : kind -> string
(** Stable lower-snake-case name, e.g. ["task_alloc"]. *)

val kind_to_int : kind -> int
(** The stable wire integer of the kind (what {!Flight} frames and the
    columnar storage use); new kinds only ever append. *)

val kind_of_int_opt : int -> kind option
(** Inverse of {!kind_to_int}; [None] for integers no kind owns (a
    corrupt or future frame). *)

type event = { kind : kind; time : float; a : int; b : int }

type t

val create : ?capacity:int -> ?limit:int -> ?metrics:Metrics.t -> unit -> t
(** An empty trace. [capacity] (default 1024) presizes the columns.

    With [limit] the trace is a bounded ring: it grows normally up to
    [limit] events, then each further emission overwrites the oldest
    retained event, so a long-running serve holds the most recent
    [limit] events in constant space. Reads ({!get}, {!iter},
    {!to_array}) always present the retained events oldest-first.
    Without [limit] (the default) the trace is unbounded, which is what
    seeded offline runs want — nothing is ever dropped, and equal runs
    stay byte-identical.

    [metrics] registers an [obs.dropped_events] counter in the given
    registry, bumped once per overwritten event. *)

val length : t -> int
(** Number of retained events. *)

val limit : t -> int
(** The ring bound, or [0] when unbounded. *)

val dropped : t -> int
(** Events overwritten since creation (always [0] when unbounded).
    Survives {!clear}: it counts over the trace's lifetime. *)

val clear : t -> unit
(** Forget all events, keeping the column storage. *)

(** {1 Recording} *)

val emit : t -> kind -> time:float -> a:int -> b:int -> unit

(** Typed wrappers over {!emit}, one per event kind; unused payload slots
    are recorded as [0]. *)

val task_alloc : t -> time:float -> task:int -> client:int -> unit
val task_start : t -> time:float -> task:int -> client:int -> unit
val task_complete : t -> time:float -> task:int -> client:int -> unit
val task_fail : t -> time:float -> task:int -> client:int -> unit
val client_stall : t -> time:float -> client:int -> unit
val client_resume : t -> time:float -> client:int -> unit
val frontier_push : t -> time:float -> node:int -> unit
val frontier_pop : t -> time:float -> node:int -> unit
val eligible_count : t -> time:float -> count:int -> unit
val timeout_fired : t -> time:float -> task:int -> client:int -> unit
val retry_scheduled : t -> time:float -> task:int -> retry:int -> unit
val speculative_launch : t -> time:float -> task:int -> unit
val replica_cancelled : t -> time:float -> task:int -> client:int -> unit
val client_crash : t -> time:float -> client:int -> transient:bool -> unit
val client_rejoin : t -> time:float -> client:int -> unit
val frontier_depth : t -> time:float -> shard:int -> depth:int -> unit
val inflight : t -> time:float -> count:int -> unit

(** {1 Reading} *)

val get : t -> int -> event
(** The [i]-th event, in emission order. Raises [Invalid_argument] when
    out of range. *)

val iter : (event -> unit) -> t -> unit
(** Apply to every event in emission order. *)

val to_array : t -> event array

val eligibility_timeline : t -> (float * int) array
(** The [(time, count)] pairs of the {!Eligible_count} events, in
    emission order — the time-resolved eligibility curve the paper's
    temporal argument is about. *)
