(** Domain-safe live telemetry: sharded counters, atomic gauges and
    lock-free log-bucketed histograms, readable while the producers are
    still running.

    {!Metrics} is the deterministic dump-at-exit registry: single
    writer, exact buckets, byte-stable JSON. [Live] is its concurrent
    sibling for watching a running system — a multicore
    [Ic_par.Runtime] or an [Ic_served] frontend under real traffic.
    The two coexist: producers that accept both record the same event
    into both, and seeded offline artifacts keep coming from
    {!Metrics} alone.

    {2 Cell layout}

    A counter owns one [Atomic.t] cell per shard (shard count is fixed
    at registry creation and rounded up to a power of two). Writers
    increment [cells.(shard land mask)] with a single
    [Atomic.fetch_and_add]; passing the writer's domain/worker index as
    [shard] gives each domain a private cell, so the hot path never
    contends. The cells are allocated with padding objects between them
    to keep them on separate cache lines. [counter_value] merges on
    read by summing the cells; the sum is not a linearizable snapshot
    (increments can land mid-sum) but is exact once the writers are
    quiescent, and never under-counts a write that happened-before the
    read.

    Gauges are a single atomic cell (last write wins). Histograms are a
    shared array of atomic buckets, log-spaced at two buckets per
    octave (powers of two), covering ~5e-7 .. 2e3 with saturation at
    both ends; an observation is two [fetch_and_add]s (bucket + count)
    plus a fixed-point sum update, lock-free and allocation-free.
    Quantiles are reconstructed from bucket counts by geometric
    interpolation, optionally against a previous snapshot — that delta
    is the sliding-window p50/p95/p99 a scraper wants. *)

type t
(** A live registry: a set of named instruments. *)

val create : ?shards:int -> unit -> t
(** A fresh registry. [shards] (default 8, rounded up to a power of
    two) is the number of counter cells per counter — make it at least
    the number of concurrently-writing domains. *)

val shards : t -> int
(** The (rounded) shard count. *)

type counter
type gauge
type histogram

val counter : t -> string -> counter
(** The counter named [name], registering it on first use. Safe to call
    from any domain; re-registration returns the same instrument.
    Raises [Invalid_argument] if the name is already a gauge or
    histogram. *)

val gauge : t -> string -> gauge
val histogram : t -> string -> histogram

(** {1 Hot path} *)

val incr : counter -> shard:int -> int -> unit
(** [incr c ~shard n] adds [n] to [c]'s cell [shard land mask]. One
    atomic RMW on a cell no other domain should be writing. *)

val set : gauge -> float -> unit
val observe : histogram -> float -> unit

(** {1 Merge-on-read} *)

val counter_value : counter -> int
(** Sum of all cells. *)

val gauge_value : gauge -> float

type hsnap = {
  counts : int array;  (** per-bucket observation counts *)
  sum : float;  (** sum of observed values (ns-resolution fixed point) *)
  count : int;  (** total observations *)
}

val histogram_snapshot : histogram -> hsnap

val hsnap_sub : hsnap -> hsnap -> hsnap
(** [hsnap_sub a b] is the window [a - b]: observations recorded after
    [b] was taken. *)

val quantile : hsnap -> float -> float
(** [quantile s q] reconstructs the [q]-quantile (0 <= q <= 1) from
    bucket counts by geometric interpolation; [nan] when the snapshot
    is empty. *)

val n_buckets : int

val bucket_upper : int -> float
(** Upper bound of bucket [i] (the [le] label of the OpenMetrics
    rendering); [bucket_upper (n_buckets - 1)] is the saturation
    bucket, rendered as [+Inf]. *)

(** {1 Exposition} *)

val rss_bytes : unit -> int
(** The process's current resident set, from [/proc/self/status]
    ([VmRSS]); [0] where that file does not exist. *)

val openmetrics : ?process:bool -> t -> string
(** The registry in OpenMetrics text exposition format: counters as
    [name_total], gauges bare, histograms as cumulative
    [name_bucket{le="..."}] / [name_sum] / [name_count] families,
    terminated by [# EOF]. Metric names have ['.'] mapped to ['_'].
    Instruments render in name order. With [process] (default [true])
    the output also carries process-level gauges: RSS bytes (from
    [/proc/self/status], 0 where unavailable), GC counters from
    [Gc.quick_stat], and uptime since {!create}. *)

val to_json : t -> string
(** The registry as a JSON document (counters/gauges/histograms maps,
    names sorted) — same shape family as {!Metrics.to_json}, for
    snapshot artifacts. *)
