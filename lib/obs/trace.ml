(* Column-wise storage: one byte per event for the kind, one unboxed float
   for the timestamp, two ints of payload. Emission writes four cells and
   bumps the length; the columns double when full, so a trace of e events
   does O(log e) allocations total regardless of event mix. *)

type kind =
  | Task_alloc
  | Task_start
  | Task_complete
  | Task_fail
  | Client_stall
  | Client_resume
  | Frontier_push
  | Frontier_pop
  | Eligible_count
  | Timeout_fired
  | Retry_scheduled
  | Speculative_launch
  | Replica_cancelled
  | Client_crash
  | Client_rejoin
  | Frontier_depth
  | Inflight

let kind_to_int = function
  | Task_alloc -> 0
  | Task_start -> 1
  | Task_complete -> 2
  | Task_fail -> 3
  | Client_stall -> 4
  | Client_resume -> 5
  | Frontier_push -> 6
  | Frontier_pop -> 7
  | Eligible_count -> 8
  | Timeout_fired -> 9
  | Retry_scheduled -> 10
  | Speculative_launch -> 11
  | Replica_cancelled -> 12
  | Client_crash -> 13
  | Client_rejoin -> 14
  | Frontier_depth -> 15
  | Inflight -> 16

let kind_of_int = function
  | 0 -> Task_alloc
  | 1 -> Task_start
  | 2 -> Task_complete
  | 3 -> Task_fail
  | 4 -> Client_stall
  | 5 -> Client_resume
  | 6 -> Frontier_push
  | 7 -> Frontier_pop
  | 8 -> Eligible_count
  | 9 -> Timeout_fired
  | 10 -> Retry_scheduled
  | 11 -> Speculative_launch
  | 12 -> Replica_cancelled
  | 13 -> Client_crash
  | 14 -> Client_rejoin
  | 15 -> Frontier_depth
  | 16 -> Inflight
  | _ -> assert false

let kind_of_int_opt i = if i >= 0 && i <= 16 then Some (kind_of_int i) else None

let kind_name = function
  | Task_alloc -> "task_alloc"
  | Task_start -> "task_start"
  | Task_complete -> "task_complete"
  | Task_fail -> "task_fail"
  | Client_stall -> "client_stall"
  | Client_resume -> "client_resume"
  | Frontier_push -> "frontier_push"
  | Frontier_pop -> "frontier_pop"
  | Eligible_count -> "eligible_count"
  | Timeout_fired -> "timeout_fired"
  | Retry_scheduled -> "retry_scheduled"
  | Speculative_launch -> "speculative_launch"
  | Replica_cancelled -> "replica_cancelled"
  | Client_crash -> "client_crash"
  | Client_rejoin -> "client_rejoin"
  | Frontier_depth -> "frontier_depth"
  | Inflight -> "inflight"

type event = { kind : kind; time : float; a : int; b : int }

type t = {
  mutable kinds : Bytes.t;
  mutable times : float array;
  mutable pa : int array;
  mutable pb : int array;
  mutable len : int;
  (* ring head: oldest event's physical index. Stays 0 until a bounded
     trace fills, so the unbounded layout is exactly the historical
     one. *)
  mutable start : int;
  limit : int;  (* 0 = unbounded *)
  mutable dropped : int;
  drop_counter : Metrics.counter option;
}

let create ?(capacity = 1024) ?limit ?metrics () =
  let limit =
    match limit with
    | None -> 0
    | Some l ->
      if l < 1 then invalid_arg "Trace.create: limit must be >= 1";
      l
  in
  let capacity = max capacity 16 in
  let capacity = if limit > 0 then min capacity limit else capacity in
  let capacity = max capacity 1 in
  {
    kinds = Bytes.create capacity;
    times = Array.make capacity 0.0;
    pa = Array.make capacity 0;
    pb = Array.make capacity 0;
    len = 0;
    start = 0;
    limit;
    dropped = 0;
    drop_counter =
      Option.map (fun m -> Metrics.counter m "obs.dropped_events") metrics;
  }

let length t = t.len
let limit t = t.limit
let dropped t = t.dropped

let clear t =
  t.len <- 0;
  t.start <- 0

let grow t =
  let cap = 2 * Array.length t.times in
  let cap = if t.limit > 0 then min cap t.limit else cap in
  let kinds = Bytes.create cap in
  Bytes.blit t.kinds 0 kinds 0 t.len;
  let times = Array.make cap 0.0 in
  Array.blit t.times 0 times 0 t.len;
  let pa = Array.make cap 0 in
  Array.blit t.pa 0 pa 0 t.len;
  let pb = Array.make cap 0 in
  Array.blit t.pb 0 pb 0 t.len;
  t.kinds <- kinds;
  t.times <- times;
  t.pa <- pa;
  t.pb <- pb

let emit t kind ~time ~a ~b =
  (if t.len = Array.length t.times then
     if t.limit = 0 || t.len < t.limit then grow t);
  if t.len < Array.length t.times then begin
    (* not yet full: [start] is still 0, physical index = len *)
    let i = t.len in
    Bytes.unsafe_set t.kinds i (Char.unsafe_chr (kind_to_int kind));
    Array.unsafe_set t.times i time;
    Array.unsafe_set t.pa i a;
    Array.unsafe_set t.pb i b;
    t.len <- i + 1
  end
  else begin
    (* bounded ring at capacity: overwrite the oldest event *)
    let i = t.start in
    Bytes.unsafe_set t.kinds i (Char.unsafe_chr (kind_to_int kind));
    Array.unsafe_set t.times i time;
    Array.unsafe_set t.pa i a;
    Array.unsafe_set t.pb i b;
    t.start <- (if i + 1 = t.len then 0 else i + 1);
    t.dropped <- t.dropped + 1;
    match t.drop_counter with
    | Some c -> Metrics.incr c
    | None -> ()
  end

let task_alloc t ~time ~task ~client = emit t Task_alloc ~time ~a:task ~b:client
let task_start t ~time ~task ~client = emit t Task_start ~time ~a:task ~b:client

let task_complete t ~time ~task ~client =
  emit t Task_complete ~time ~a:task ~b:client

let task_fail t ~time ~task ~client = emit t Task_fail ~time ~a:task ~b:client
let client_stall t ~time ~client = emit t Client_stall ~time ~a:client ~b:0
let client_resume t ~time ~client = emit t Client_resume ~time ~a:client ~b:0
let frontier_push t ~time ~node = emit t Frontier_push ~time ~a:node ~b:0
let frontier_pop t ~time ~node = emit t Frontier_pop ~time ~a:node ~b:0
let eligible_count t ~time ~count = emit t Eligible_count ~time ~a:count ~b:0

let timeout_fired t ~time ~task ~client =
  emit t Timeout_fired ~time ~a:task ~b:client

let retry_scheduled t ~time ~task ~retry =
  emit t Retry_scheduled ~time ~a:task ~b:retry

let speculative_launch t ~time ~task =
  emit t Speculative_launch ~time ~a:task ~b:0

let replica_cancelled t ~time ~task ~client =
  emit t Replica_cancelled ~time ~a:task ~b:client

let client_crash t ~time ~client ~transient =
  emit t Client_crash ~time ~a:client ~b:(if transient then 1 else 0)

let client_rejoin t ~time ~client = emit t Client_rejoin ~time ~a:client ~b:0

let frontier_depth t ~time ~shard ~depth =
  emit t Frontier_depth ~time ~a:shard ~b:depth

let inflight t ~time ~count = emit t Inflight ~time ~a:count ~b:0

(* logical position [i] (0 = oldest retained event) -> physical index;
   [start] is 0 unless a bounded ring has wrapped *)
let phys t i =
  let p = t.start + i in
  if p >= t.len then p - t.len else p

let get t i =
  if i < 0 || i >= t.len then invalid_arg "Trace.get: index out of range";
  let i = phys t i in
  {
    kind = kind_of_int (Char.code (Bytes.get t.kinds i));
    time = t.times.(i);
    a = t.pa.(i);
    b = t.pb.(i);
  }

let iter f t =
  for i = 0 to t.len - 1 do
    let i = phys t i in
    f
      {
        kind = kind_of_int (Char.code (Bytes.unsafe_get t.kinds i));
        time = Array.unsafe_get t.times i;
        a = Array.unsafe_get t.pa i;
        b = Array.unsafe_get t.pb i;
      }
  done

let to_array t = Array.init t.len (get t)

let eligibility_timeline t =
  let n = ref 0 in
  for i = 0 to t.len - 1 do
    if Char.code (Bytes.unsafe_get t.kinds i) = kind_to_int Eligible_count then
      incr n
  done;
  let out = Array.make !n (0.0, 0) in
  let j = ref 0 in
  for i = 0 to t.len - 1 do
    let i = phys t i in
    if Char.code (Bytes.unsafe_get t.kinds i) = kind_to_int Eligible_count
    then begin
      out.(!j) <- (t.times.(i), t.pa.(i));
      incr j
    end
  done;
  out
