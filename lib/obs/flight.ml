(* The black box. On disk:

     magic "ICFLT001" | u32 slot-count | u32 slot-size (= 40)
     then slot-count frames of
     u64 seq | f64 time | u64 a | u64 b | u32 kind | u32 CRC32

   all little endian; CRC32 (same 0xEDB88320 polynomial as the WAL)
   covers the 36 bytes before it. seq = 0 marks a slot never written.
   The file is mapped shared and written in place: slot (seq-1) mod
   slot-count. There is no cursor, header update, or flush on the
   record path — a reader reconstructs the ring order from the
   sequence numbers alone, and a frame the writer was killed inside
   simply fails its CRC. *)

type ba =
  (char, Bigarray.int8_unsigned_elt, Bigarray.c_layout) Bigarray.Array1.t

type t = {
  fd : Unix.file_descr;
  map : ba;
  n_slots : int;
  scratch : Bytes.t;
  mutable next_seq : int;
  mutable closed : bool;
}

let magic = "ICFLT001"
let slot_size = 40
let header_size = 16
let default_slots = 4096

(* ------------------------------------------------------------- CRC32 *)

let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let crc32 b off len =
  let table = Lazy.force crc_table in
  let c = ref 0xFFFFFFFF in
  for i = off to off + len - 1 do
    c := table.((!c lxor Char.code (Bytes.unsafe_get b i)) land 0xFF)
         lxor (!c lsr 8)
  done;
  !c lxor 0xFFFFFFFF

(* ------------------------------------------------------------ frames *)

let encode_frame scratch ~seq ~time ~kind ~a ~b =
  Bytes.set_int64_le scratch 0 (Int64.of_int seq);
  Bytes.set_int64_le scratch 8 (Int64.bits_of_float time);
  Bytes.set_int64_le scratch 16 (Int64.of_int a);
  Bytes.set_int64_le scratch 24 (Int64.of_int b);
  Bytes.set_int32_le scratch 32 (Int32.of_int (Trace.kind_to_int kind));
  Bytes.set_int32_le scratch 36 (Int32.of_int (crc32 scratch 0 36))

type event = { seq : int; time : float; kind : Trace.kind; a : int; b : int }

(* [None] for an empty, torn or foreign slot *)
let decode_frame b off =
  let seq = Int64.to_int (Bytes.get_int64_le b off) in
  if seq <= 0 then None
  else begin
    let crc = Int32.to_int (Bytes.get_int32_le b (off + 36)) land 0xFFFFFFFF in
    if crc32 b off 36 <> crc then None
    else
      let kind_i =
        Int32.to_int (Bytes.get_int32_le b (off + 32)) land 0xFFFFFFFF
      in
      match Trace.kind_of_int_opt kind_i with
      | None -> None
      | Some kind ->
        Some
          {
            seq;
            time = Int64.float_of_bits (Bytes.get_int64_le b (off + 8));
            kind;
            a = Int64.to_int (Bytes.get_int64_le b (off + 16));
            b = Int64.to_int (Bytes.get_int64_le b (off + 24));
          }
  end

(* ---------------------------------------------------------- the ring *)

let file_size n_slots = header_size + (n_slots * slot_size)

let map_fd fd len : ba =
  Bigarray.array1_of_genarray
    (Unix.map_file fd Bigarray.char Bigarray.c_layout true [| len |])

let blit_to_map map off b len =
  for i = 0 to len - 1 do
    Bigarray.Array1.unsafe_set map (off + i) (Bytes.unsafe_get b i)
  done

let read_of_map map off b len =
  for i = 0 to len - 1 do
    Bytes.unsafe_set b i (Bigarray.Array1.unsafe_get map (off + i))
  done

let get_u32_map map off =
  Char.code (Bigarray.Array1.get map off)
  lor (Char.code (Bigarray.Array1.get map (off + 1)) lsl 8)
  lor (Char.code (Bigarray.Array1.get map (off + 2)) lsl 16)
  lor (Char.code (Bigarray.Array1.get map (off + 3)) lsl 24)

let header_matches map n_slots =
  let ok = ref true in
  String.iteri
    (fun i ch -> if Bigarray.Array1.get map i <> ch then ok := false)
    magic;
  !ok && get_u32_map map 8 = n_slots && get_u32_map map 12 = slot_size

let write_header map n_slots =
  String.iteri (fun i ch -> Bigarray.Array1.set map i ch) magic;
  let set_u32 off v =
    Bigarray.Array1.set map off (Char.chr (v land 0xFF));
    Bigarray.Array1.set map (off + 1) (Char.chr ((v lsr 8) land 0xFF));
    Bigarray.Array1.set map (off + 2) (Char.chr ((v lsr 16) land 0xFF));
    Bigarray.Array1.set map (off + 3) (Char.chr ((v lsr 24) land 0xFF))
  in
  set_u32 8 n_slots;
  set_u32 12 slot_size

(* highest valid sequence number in the mapped ring (0 when empty) *)
let scan_max_seq map n_slots scratch =
  let best = ref 0 in
  for s = 0 to n_slots - 1 do
    read_of_map map (header_size + (s * slot_size)) scratch slot_size;
    match decode_frame scratch 0 with
    | Some e -> if e.seq > !best then best := e.seq
    | None -> ()
  done;
  !best

let create ?(slots = default_slots) path =
  let n_slots = max slots 16 in
  match Unix.openfile path [ Unix.O_RDWR; Unix.O_CREAT ] 0o644 with
  | exception Unix.Unix_error (e, fn, _) ->
    Error (Printf.sprintf "%s: %s: %s" path fn (Unix.error_message e))
  | fd -> (
    match
      let size = file_size n_slots in
      let existing = (Unix.fstat fd).Unix.st_size in
      let reopen = existing = size in
      if not reopen then Unix.ftruncate fd size;
      let map = map_fd fd size in
      let scratch = Bytes.create slot_size in
      let next_seq =
        if reopen && header_matches map n_slots then
          1 + scan_max_seq map n_slots scratch
        else begin
          (* fresh file, foreign content or changed geometry: wipe *)
          Bigarray.Array1.fill map '\000';
          write_header map n_slots;
          1
        end
      in
      { fd; map; n_slots; scratch; next_seq; closed = false }
    with
    | t -> Ok t
    | exception Unix.Unix_error (e, fn, _) ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      Error (Printf.sprintf "%s: %s: %s" path fn (Unix.error_message e)))

let record t kind ~time ~a ~b =
  if not t.closed then begin
    let seq = t.next_seq in
    t.next_seq <- seq + 1;
    let slot = (seq - 1) mod t.n_slots in
    encode_frame t.scratch ~seq ~time ~kind ~a ~b;
    blit_to_map t.map (header_size + (slot * slot_size)) t.scratch slot_size
  end

let next_seq t = t.next_seq
let slots t = t.n_slots

let close t =
  if not t.closed then begin
    t.closed <- true;
    try Unix.close t.fd with Unix.Unix_error _ -> ()
  end

(* ---------------------------------------------------------- recovery *)

type dump = { d_slots : int; d_valid : int; events : event array }

let load path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let len = in_channel_length ic in
        let b = Bytes.create len in
        really_input ic b 0 len;
        b)
  with
  | exception Sys_error e -> Error e
  | b ->
    let len = Bytes.length b in
    if
      len < header_size
      || Bytes.sub_string b 0 (String.length magic) <> magic
    then Error (path ^ ": not a flight recorder (bad magic)")
    else begin
      let get_u32 off =
        Int32.to_int (Bytes.get_int32_le b off) land 0xFFFFFFFF
      in
      let n_slots = get_u32 8 in
      if get_u32 12 <> slot_size then
        Error (path ^ ": unsupported flight-recorder frame size")
      else if len < file_size n_slots then
        Error (path ^ ": flight recorder shorter than its header claims")
      else begin
        let acc = ref [] in
        let valid = ref 0 in
        for s = 0 to n_slots - 1 do
          match decode_frame b (header_size + (s * slot_size)) with
          | Some e ->
            incr valid;
            acc := e :: !acc
          | None -> ()
        done;
        let events = Array.of_list !acc in
        Array.sort (fun x y -> compare x.seq y.seq) events;
        Ok { d_slots = n_slots; d_valid = !valid; events }
      end
    end

let to_trace d =
  let tr = Trace.create ~capacity:(max 16 (Array.length d.events)) () in
  Array.iter
    (fun e -> Trace.emit tr e.kind ~time:e.time ~a:e.a ~b:e.b)
    d.events;
  tr
