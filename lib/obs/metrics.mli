(** A registry of named counters, gauges and fixed-bucket histograms.

    Where {!Trace} records {e every} event for offline inspection, a
    metrics registry keeps cheap running aggregates — how many tasks
    completed, the distribution of task latencies or queue depths —
    suitable for printing after a run or scraping from a bench harness.
    Instruments are registered by name and are plain mutable cells:
    updating one is a field write (counters, gauges) or a short linear
    bucket scan (histograms); no allocation after registration.

    Registries are single-threaded, like everything in this library. *)

type t

type counter
(** A monotonically increasing integer. *)

type gauge
(** A float set to the latest value (e.g. a per-run utilization). *)

type histogram
(** Counts of observations in fixed buckets, plus their sum and count.
    Bucket [i] counts observations [x <= bounds.(i)] that fit no earlier
    bucket; one implicit overflow bucket catches the rest. *)

val create : unit -> t

(** {1 Registration}

    Registering a name twice returns the existing instrument (for
    histograms the bucket bounds must match; otherwise
    [Invalid_argument]). A name registered as one instrument type cannot
    be re-registered as another. *)

val counter : t -> string -> counter
val gauge : t -> string -> gauge

val histogram : t -> string -> buckets:float array -> histogram
(** [buckets] are the upper bounds, finite and strictly increasing;
    raises [Invalid_argument] otherwise. The array is copied. *)

(** {1 Updates} *)

val incr : ?by:int -> counter -> unit
(** [by] defaults to 1 and must be non-negative. *)

val set : gauge -> float -> unit
val observe : histogram -> float -> unit

val reset : t -> unit
(** Zero every registered instrument — counters to 0, gauges to 0.0,
    histogram buckets/sum/count to empty — without forgetting the
    registrations (previously handed-out instrument handles stay
    valid). This is what lets a bench harness reuse one registry across
    [--repeat] iterations and still get per-iteration numbers. *)

(** {1 Reading} *)

val counter_value : counter -> int
val gauge_value : gauge -> float

val histogram_count : histogram -> int
(** Number of observations. *)

val histogram_sum : histogram -> float

val histogram_buckets : histogram -> (float * int) array
(** [(upper_bound, count)] pairs in bound order; the final pair is
    [(infinity, overflow_count)]. *)

(** {1 Dumps} *)

val pp_text : Format.formatter -> t -> unit
(** A human-readable dump, instruments sorted by name. *)

val to_json : t -> string
(** A deterministic JSON object:
    [{"counters": {...}, "gauges": {...}, "histograms": {...}}], keys
    sorted by name. *)
