(** A minimal JSON reader, just enough to round-trip-validate this
    library's own exports (Chrome traces, metrics dumps) without an
    external dependency. Supports the full JSON value grammar with
    [\uXXXX] escapes decoded to UTF-8; numbers are read as floats. *)

type value =
  | Null
  | Bool of bool
  | Number of float
  | String of string
  | Array of value list
  | Object of (string * value) list

val parse : string -> (value, string) result
(** Parse a complete JSON document (trailing whitespace allowed). The
    error string carries a character offset. *)

(** {1 Accessors} — total, for walking validated documents. *)

val member : string -> value -> value option
(** Field lookup; [None] on missing fields and non-objects. *)

val to_list : value -> value list
(** Array elements; [[]] for non-arrays. *)

val to_string : value -> string option

val to_number : value -> float option

(** {1 String emission} — shared by every JSON writer in the tree. *)

val escape : string -> string
(** Escape a byte string for inclusion between JSON double quotes: quotes
    and backslashes are backslash-escaped, control characters become
    [\n]/[\r]/[\t]/[\b]/[\f] or [\u00XX]. Bytes [>= 0x80] pass through
    unchanged (the string is assumed to be UTF-8 already). *)

val quote : string -> string
(** [quote s] is [escape s] wrapped in double quotes — a complete JSON
    string literal. *)
