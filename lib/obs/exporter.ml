(* Chrome trace-event output. Complete ("X") slices are reconstructed by
   pairing each Task_alloc with the Task_complete/Task_fail/
   Replica_cancelled/Client_crash that closes it — a client holds at most
   one allocation at a time (even under speculation, replicas run on
   distinct clients), so an array indexed by client suffices. Counter
   ("C") samples come straight from the Eligible_count events; stall
   periods pair Client_stall/Client_resume the same way. Recovery
   decisions (timeouts, retries, speculative launches) and client
   crash/rejoin render as instant ("i") events. *)

let json_escape = Json.escape

(* simulated seconds -> trace microseconds, printed with fixed precision so
   equal traces export byte-equally *)
let us t = Printf.sprintf "%.3f" (1e6 *. t)

type slice_status = Ok | Lost | Cancelled

let chrome_trace ?(process_name = "ic_sched")
    ?(label = fun v -> "t" ^ string_of_int v) tr =
  let max_client = ref (-1) in
  Trace.iter
    (fun e ->
      match e.Trace.kind with
      | Task_alloc | Task_start | Task_complete | Task_fail
      | Timeout_fired | Replica_cancelled ->
        if e.b > !max_client then max_client := e.b
      | Client_stall | Client_resume | Client_crash | Client_rejoin ->
        if e.a > !max_client then max_client := e.a
      | Frontier_push | Frontier_pop | Eligible_count | Retry_scheduled
      | Speculative_launch | Frontier_depth | Inflight -> ())
    tr;
  let n_clients = !max_client + 1 in
  let buf = Buffer.create 4096 in
  let first = ref true in
  let entry line =
    if !first then Buffer.add_string buf "[\n" else Buffer.add_string buf ",\n";
    first := false;
    Buffer.add_string buf line
  in
  entry
    (Printf.sprintf
       "{\"ph\": \"M\", \"pid\": 0, \"tid\": 0, \"name\": \"process_name\", \
        \"args\": {\"name\": \"%s\"}}"
       (json_escape process_name));
  entry
    "{\"ph\": \"M\", \"pid\": 0, \"tid\": 0, \"name\": \"thread_name\", \
     \"args\": {\"name\": \"server\"}}";
  for c = 0 to n_clients - 1 do
    entry
      (Printf.sprintf
         "{\"ph\": \"M\", \"pid\": 0, \"tid\": %d, \"name\": \"thread_name\", \
          \"args\": {\"name\": \"client %d\"}}"
         (c + 1) c)
  done;
  let instant ~tid time name args =
    entry
      (Printf.sprintf
         "{\"ph\": \"i\", \"s\": \"t\", \"pid\": 0, \"tid\": %d, \"ts\": %s, \
          \"name\": \"%s\", \"args\": {%s}}"
         tid (us time) (json_escape name) args)
  in
  let open_task = Array.make (max n_clients 1) (-1) in
  let open_task_at = Array.make (max n_clients 1) 0.0 in
  let stall_since = Array.make (max n_clients 1) nan in
  let duration time t0 = if time > t0 then time -. t0 else 0.0 in
  let close_task status time task client =
    if client >= 0 && client < n_clients && open_task.(client) = task then begin
      let t0 = open_task_at.(client) in
      open_task.(client) <- -1;
      let suffix, extra =
        match status with
        | Ok -> ("", "")
        | Lost -> (" (lost)", ", \"lost\": true")
        | Cancelled -> (" (cancelled)", ", \"cancelled\": true")
      in
      entry
        (Printf.sprintf
           "{\"ph\": \"X\", \"pid\": 0, \"tid\": %d, \"ts\": %s, \"dur\": %s, \
            \"name\": \"%s\", \"args\": {\"task\": %d%s}}"
           (client + 1) (us t0)
           (us (duration time t0))
           (json_escape (label task ^ suffix))
           task extra)
    end
  in
  let close_stall time client =
    if
      client >= 0 && client < n_clients
      && not (Float.is_nan stall_since.(client))
    then begin
      let t0 = stall_since.(client) in
      stall_since.(client) <- nan;
      entry
        (Printf.sprintf
           "{\"ph\": \"X\", \"pid\": 0, \"tid\": %d, \"ts\": %s, \"dur\": %s, \
            \"name\": \"stall\", \"args\": {}}"
           (client + 1) (us t0)
           (us (time -. t0)))
    end
  in
  Trace.iter
    (fun e ->
      match e.Trace.kind with
      | Task_alloc ->
        if e.b >= 0 && e.b < n_clients then begin
          open_task.(e.b) <- e.a;
          open_task_at.(e.b) <- e.time
        end
      | Task_start -> ()
      | Task_complete -> close_task Ok e.time e.a e.b
      | Task_fail -> close_task Lost e.time e.a e.b
      | Replica_cancelled -> close_task Cancelled e.time e.a e.b
      | Client_stall ->
        if e.a >= 0 && e.a < n_clients then stall_since.(e.a) <- e.time
      | Client_resume -> close_stall e.time e.a
      | Client_crash ->
        (* whatever the client held dies with it *)
        if e.a >= 0 && e.a < n_clients && open_task.(e.a) >= 0 then
          close_task Lost e.time open_task.(e.a) e.a;
        close_stall e.time e.a;
        instant ~tid:(e.a + 1) e.time
          (if e.b = 0 then "crash" else "disconnect")
          (Printf.sprintf "\"client\": %d" e.a)
      | Client_rejoin ->
        instant ~tid:(e.a + 1) e.time "rejoin"
          (Printf.sprintf "\"client\": %d" e.a)
      | Timeout_fired ->
        instant ~tid:0 e.time "timeout"
          (Printf.sprintf "\"task\": %d, \"client\": %d" e.a e.b)
      | Retry_scheduled ->
        instant ~tid:0 e.time "retry"
          (Printf.sprintf "\"task\": %d, \"retry\": %d" e.a e.b)
      | Speculative_launch ->
        instant ~tid:0 e.time "speculate" (Printf.sprintf "\"task\": %d" e.a)
      | Frontier_push | Frontier_pop -> ()
      | Eligible_count ->
        entry
          (Printf.sprintf
             "{\"ph\": \"C\", \"pid\": 0, \"tid\": 0, \"ts\": %s, \"name\": \
              \"|ELIGIBLE|\", \"args\": {\"eligible\": %d}}"
             (us e.time) e.a)
      | Frontier_depth ->
        (* one counter track per shard, next to |ELIGIBLE| *)
        entry
          (Printf.sprintf
             "{\"ph\": \"C\", \"pid\": 0, \"tid\": 0, \"ts\": %s, \"name\": \
              \"|READY shard%d|\", \"args\": {\"ready\": %d}}"
             (us e.time) e.a e.b)
      | Inflight ->
        entry
          (Printf.sprintf
             "{\"ph\": \"C\", \"pid\": 0, \"tid\": 0, \"ts\": %s, \"name\": \
              \"|INFLIGHT|\", \"args\": {\"inflight\": %d}}"
             (us e.time) e.a))
    tr;
  if !first then Buffer.add_string buf "[\n";
  Buffer.add_string buf "\n]\n";
  Buffer.contents buf

let eligibility_csv tr =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "time,eligible\n";
  Array.iter
    (fun (time, count) ->
      Buffer.add_string buf (Printf.sprintf "%.9g,%d\n" time count))
    (Trace.eligibility_timeline tr);
  Buffer.contents buf
