(** Trace exporters: Chrome trace-event JSON and a CSV eligibility
    timeline.

    The Chrome export follows the trace-event format that Perfetto and
    [chrome://tracing] load: a JSON array of event objects. The layout is
    one track ([tid = client + 1]) per simulated client carrying that
    client's task slices (allocation to completion; lost allocations are
    closed by the failure and labelled as lost, redundant speculative
    replicas by the cancellation and labelled as cancelled) and stall
    slices, plus a ["|ELIGIBLE|"] counter track showing the
    allocatable-task pool over simulated time — the quantity
    IC-optimality maximizes pointwise. Client crash/disconnect/rejoin
    render as instant events on the client's track (a crash also closes
    whatever slice the client held, as lost); recovery decisions
    (timeout fired, retry scheduled, speculative launch) render as
    instant events on the server track. Simulated seconds are mapped to
    trace microseconds. *)

val chrome_trace :
  ?process_name:string -> ?label:(int -> string) -> Trace.t -> string
(** [chrome_trace tr] renders [tr] as Chrome trace-event JSON.
    [process_name] (default ["ic_sched"]) names the process track — pass
    the policy name to label the run in the UI. [label] names task
    slices from node ids (default ["t<id>"]; pass [Dag.label g] for the
    family's own labels). The output is deterministic: equal traces
    render to equal strings. *)

val eligibility_csv : Trace.t -> string
(** The {!Trace.eligibility_timeline} as CSV with a [time,eligible]
    header row. *)
