module Dag = Ic_dag.Dag
module Schedule = Ic_dag.Schedule

type instance = {
  notify : int -> unit;
  select : unit -> int option;
}

type t = {
  name : string;
  instantiate : Dag.t -> instance;
}

let name p = p.name
let instantiate p g = p.instantiate g
let notify i v = i.notify v
let select i = i.select ()

let fifo =
  let instantiate _g =
    let q = Queue.create () in
    {
      notify = (fun v -> Queue.add v q);
      select = (fun () -> Queue.take_opt q);
    }
  in
  { name = "fifo"; instantiate }

let lifo =
  let instantiate _g =
    let stack = ref [] in
    {
      notify = (fun v -> stack := v :: !stack);
      select =
        (fun () ->
          match !stack with
          | [] -> None
          | v :: rest ->
            stack := rest;
            Some v);
    }
  in
  { name = "lifo"; instantiate }

let random seed =
  let instantiate g =
    let rng = Random.State.make [| seed |] in
    (* array-backed pool with swap-remove: O(1) notify and select *)
    let pool = ref (Array.make (max 16 (Dag.n_nodes g)) 0) in
    let size = ref 0 in
    {
      notify =
        (fun v ->
          if !size = Array.length !pool then begin
            let bigger = Array.make (2 * !size) 0 in
            Array.blit !pool 0 bigger 0 !size;
            pool := bigger
          end;
          !pool.(!size) <- v;
          incr size);
      select =
        (fun () ->
          if !size = 0 then None
          else begin
            let k = Random.State.int rng !size in
            let v = !pool.(k) in
            decr size;
            !pool.(k) <- !pool.(!size);
            Some v
          end);
    }
  in
  { name = Printf.sprintf "random(%#x)" seed; instantiate }

(* rank-based policy: lowest (rank, node) first *)
let ranked name make_rank =
  let instantiate g =
    let rank = make_rank g in
    let heap : (int * int, int) Heap.t = Heap.create () in
    {
      notify = (fun v -> Heap.push heap (rank.(v), v) v);
      select = (fun () -> Option.map snd (Heap.pop heap));
    }
  in
  { name; instantiate }

let max_out_degree =
  ranked "max-out-degree" (fun g ->
      Array.init (Dag.n_nodes g) (fun v -> -Dag.out_degree g v))

let min_depth = ranked "min-depth" Dag.depth

let critical_path =
  ranked "critical-path" (fun g -> Array.map (fun h -> -h) (Dag.height g))

let of_schedule name s =
  let pos =
    lazy
      (let order = Schedule.order s in
       let pos = Array.make (Array.length order) 0 in
       Array.iteri (fun i v -> pos.(v) <- i) order;
       pos)
  in
  ranked name (fun g ->
      let pos = Lazy.force pos in
      if Array.length pos <> Dag.n_nodes g then
        invalid_arg "Policy.of_schedule: schedule does not fit the dag";
      pos)

let baselines =
  [ fifo; lifo; random 0xF00D; max_out_degree; min_depth; critical_path ]

module Robust = struct
  (* Membership flags make notify idempotent and withdrawal O(1) without
     touching the base policy's internal containers: duplicates and
     withdrawn tasks stay in the base's heap/queue as stale entries and
     are skipped on select (lazy deletion). Invariant: [pooled.(v)]
     implies the base holds at least one live entry for [v]. *)
  type t = {
    base : instance;
    pooled : bool array;
    mutable size : int;
  }

  let create p g =
    {
      base = instantiate p g;
      pooled = Array.make (max 1 (Dag.n_nodes g)) false;
      size = 0;
    }

  let notify r v =
    if not r.pooled.(v) then begin
      r.pooled.(v) <- true;
      r.size <- r.size + 1;
      r.base.notify v
    end

  let rec select r =
    match r.base.select () with
    | None -> None
    | Some v ->
      if r.pooled.(v) then begin
        r.pooled.(v) <- false;
        r.size <- r.size - 1;
        Some v
      end
      else select r

  let withdraw r v =
    if r.pooled.(v) then begin
      r.pooled.(v) <- false;
      r.size <- r.size - 1
    end

  let pooled r v = r.pooled.(v)
  let size r = r.size
end

let run p g =
  let n = Dag.n_nodes g in
  let inst = instantiate p g in
  let fr = Ic_dag.Frontier.create g in
  Ic_dag.Frontier.iter inst.notify fr;
  let order = Array.make n (-1) in
  for t = 0 to n - 1 do
    match inst.select () with
    | None -> invalid_arg "Policy.run: pool exhausted before completion"
    | Some v ->
      order.(t) <- v;
      Ic_dag.Frontier.execute fr ~on_promote:inst.notify v
  done;
  Schedule.of_array_exn g order
