(** Task-allocation policies: the baselines the theory is assessed against.

    A policy decides, among the currently ELIGIBLE tasks, which to allocate
    next. The simulation studies the paper cites ([15], [19]) compare
    IC-optimal schedules against exactly this kind of heuristic — notably
    the FIFO dag-scheduling heuristic of the Condor system. A policy is
    instantiated per dag; the driver {!notify}s it of every task that
    becomes eligible (in discovery order) and {!select}s tasks one at a
    time. Since executed nodes never lose parents, a notified task remains
    eligible until selected, so the policy's pool is exactly the eligible
    set. *)

type t

val name : t -> string

(** {1 Baseline policies} *)

val fifo : t
(** Allocate in eligibility-discovery order (Condor-style FIFO). *)

val lifo : t
(** Most recently eligible first. *)

val random : int -> t
(** Uniform among eligible, from the given seed. *)

val max_out_degree : t
(** Greedy: prefer tasks with more children (immediate fan-out). *)

val min_depth : t
(** Prefer tasks closer to the sources (breadth-first flavour). *)

val critical_path : t
(** Prefer tasks with the longest remaining path to a sink. *)

val of_schedule : string -> Ic_dag.Schedule.t -> t
(** The priority-list policy induced by a schedule: always allocate the
    eligible task the schedule executes earliest. With an IC-optimal
    schedule this is "the theory's" policy. *)

val baselines : t list
(** [fifo; lifo; random 0xF00D; max_out_degree; min_depth; critical_path]. *)

(** {1 Driving a policy} *)

type instance

val instantiate : t -> Ic_dag.Dag.t -> instance
val notify : instance -> int -> unit
(** A task became eligible. *)

val select : instance -> int option
(** Allocate (and remove from the pool) the policy's choice. *)

val run : t -> Ic_dag.Dag.t -> Ic_dag.Schedule.t
(** Sequential list scheduling: repeatedly select and execute, notifying
    newly eligible tasks (children in ascending order). The resulting
    schedule's profile is what eligibility-rate comparisons use. *)

(** {1 Fault-tolerant driving}

    Under fault injection a task can become eligible more than once
    (retry after a failure or timeout, speculative re-execution) and can
    stop being allocatable while pooled (another replica finished
    first). Base policies assume each task is notified exactly once, so
    the simulator drives them through this wrapper instead. *)

module Robust : sig
  type policy := t
  type t

  val create : policy -> Ic_dag.Dag.t -> t

  val notify : t -> int -> unit
  (** Idempotent: re-notifying a task already in the pool is a no-op, so
      retries and speculation never create duplicate pool entries. *)

  val select : t -> int option
  (** The base policy's choice among live pool members; stale entries
      left behind by {!withdraw} or duplicate notifications are skipped
      (lazy deletion). *)

  val withdraw : t -> int -> unit
  (** Remove a task from the pool without selecting it (its result
      arrived some other way). O(1); the base's entry goes stale. *)

  val pooled : t -> int -> bool
  val size : t -> int
end
