module Dag = Ic_dag.Dag
module Compose = Ic_core.Compose
module Diamond = Ic_families.Diamond

(* In a symmetric diamond, component 0 is the out-tree with identity
   embedding and component 1 the dual in-tree (same node numbering as the
   out-tree) with its own embedding; node [v] of the out-tree is mated with
   node [v] of the in-tree. *)
let embeddings (d : Diamond.t) =
  match Compose.components d.Diamond.compose with
  | [ (out_tree, out_embed); (in_tree, in_embed) ] ->
    if not (Dag.equal in_tree (Dag.dual out_tree)) then
      invalid_arg "Coarsen_diamond: diamond is not symmetric";
    (out_tree, out_embed, in_embed)
  | _ -> invalid_arg "Coarsen_diamond: unexpected composition shape"

let subtree_nodes tree x =
  let acc = ref [] in
  let stack = Stack.create () in
  Stack.push x stack;
  while not (Stack.is_empty stack) do
    let v = Stack.pop stack in
    acc := v :: !acc;
    Dag.iter_succ tree v (fun c -> Stack.push c stack)
  done;
  !acc

let coarsen (d : Diamond.t) ~subtree_roots =
  let out_tree, out_embed, in_embed = embeddings d in
  let g = Diamond.dag d in
  let cluster_of = Array.init (Dag.n_nodes g) Fun.id in
  let claimed = Array.make (Dag.n_nodes out_tree) false in
  List.iter
    (fun x ->
      if x < 0 || x >= Dag.n_nodes out_tree then
        invalid_arg "Coarsen_diamond.coarsen: root out of range";
      List.iter
        (fun v ->
          if claimed.(v) then
            invalid_arg "Coarsen_diamond.coarsen: subtree roots overlap";
          claimed.(v) <- true)
        (subtree_nodes out_tree x))
    subtree_roots;
  List.iter
    (fun x ->
      let members = subtree_nodes out_tree x in
      let repr = out_embed.(x) in
      List.iter
        (fun v ->
          cluster_of.(out_embed.(v)) <- repr;
          cluster_of.(in_embed.(v)) <- repr)
        members)
    subtree_roots;
  Cluster.make_exn g ~cluster_of

let uniform d ~depth =
  let out_tree, _, _ = embeddings d in
  let depths = Dag.depth out_tree in
  let roots =
    List.filter
      (fun v -> depths.(v) = depth)
      (List.init (Dag.n_nodes out_tree) Fun.id)
  in
  coarsen d ~subtree_roots:roots
