module Dag = Ic_dag.Dag

type t = {
  fine : Dag.t;
  cluster_of : int array;
  coarse : Dag.t;
}

let compact cluster_of =
  let n = Array.length cluster_of in
  let remap = Hashtbl.create 16 in
  let next = ref 0 in
  let out = Array.make n (-1) in
  for v = 0 to n - 1 do
    let c = cluster_of.(v) in
    let c' =
      match Hashtbl.find_opt remap c with
      | Some c' -> c'
      | None ->
        let c' = !next in
        Hashtbl.add remap c c';
        incr next;
        c'
    in
    out.(v) <- c'
  done;
  (out, !next)

let make fine ~cluster_of =
  if Array.length cluster_of <> Dag.n_nodes fine then
    Error "cluster_of length mismatch"
  else if
    Array.exists (fun c -> c < 0 || c >= Dag.n_nodes fine) cluster_of
    && Dag.n_nodes fine > 0
  then Error "cluster id out of range"
  else begin
    let cluster_of, n_clusters = compact cluster_of in
    Result.map
      (fun coarse -> { fine; cluster_of; coarse })
      (Dag.quotient fine ~cluster_of ~n_clusters)
  end

let make_exn fine ~cluster_of =
  match make fine ~cluster_of with
  | Ok t -> t
  | Error msg -> invalid_arg ("Cluster.make_exn: " ^ msg)

let trivial fine =
  make_exn fine ~cluster_of:(Array.init (Dag.n_nodes fine) Fun.id)

let work ?(task_work = fun _ -> 1.0) t =
  let acc = Array.make (Dag.n_nodes t.coarse) 0.0 in
  Array.iteri
    (fun v c -> acc.(c) <- acc.(c) +. task_work v)
    t.cluster_of;
  acc

let cut_arcs t =
  Dag.fold_arcs t.fine 0 (fun acc u v ->
      if t.cluster_of.(u) <> t.cluster_of.(v) then acc + 1 else acc)

let cluster_out_communication t =
  let acc = Array.make (Dag.n_nodes t.coarse) 0 in
  Dag.iter_arcs t.fine (fun u v ->
      let cu = t.cluster_of.(u) in
      if cu <> t.cluster_of.(v) then acc.(cu) <- acc.(cu) + 1);
  acc

let max_work ?task_work t = Array.fold_left max 0.0 (work ?task_work t)
let max_out_communication t =
  Array.fold_left max 0 (cluster_out_communication t)
